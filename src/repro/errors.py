"""Exception hierarchy shared by every subsystem of the reproduction.

Grouping all exceptions in one module keeps ``except`` clauses explicit:
callers can catch :class:`ReproError` to trap anything raised by this
library while letting genuine programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class NandError(ReproError):
    """Base class for NAND device model violations."""


class AddressError(NandError):
    """A chip/block/page or flat address is out of range."""


class ProgramOrderError(NandError):
    """A program command violated NAND's in-order page programming rule."""


class ReadFreePageError(NandError):
    """A read targeted a page that has not been programmed since erase."""


class ProgramTwiceError(NandError):
    """A program command targeted an already-programmed page (erase-before-write)."""


class FtlError(ReproError):
    """Base class for flash-translation-layer violations."""


class OutOfSpaceError(FtlError):
    """The FTL ran out of free physical space and GC could not reclaim more."""


class MappingError(FtlError):
    """The logical-to-physical mapping was queried or mutated inconsistently."""


class VirtualBlockError(FtlError):
    """A virtual-block lifecycle or pairing constraint was violated."""


class TraceError(ReproError):
    """Base class for trace parsing/generation problems."""


class TraceFormatError(TraceError):
    """An input trace file did not match the expected format."""
