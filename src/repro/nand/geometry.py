"""Flat and structured NAND address translation.

The FTL layers address pages with a flat *physical page number* (PPN) and
blocks with a flat *physical block number* (PBN).  This module converts
between those flat numbers and the structured (chip, block, page) /
(chip, block) coordinates the chip model uses.

Layout: PPNs are block-major — all pages of PBN 0, then all pages of
PBN 1, ... — so ``ppn // pages_per_block == pbn`` and
``ppn % pages_per_block`` is the page index inside the block (which also
determines the gate stack layer and therefore the access speed).
"""

from __future__ import annotations

from repro.errors import AddressError
from repro.nand.spec import NandSpec


class Geometry:
    """Address arithmetic for a :class:`~repro.nand.spec.NandSpec` device."""

    def __init__(self, spec: NandSpec) -> None:
        self.spec = spec
        self.pages_per_block = spec.pages_per_block
        self.blocks_per_chip = spec.blocks_per_chip
        self.num_chips = spec.num_chips
        self.num_channels = spec.num_channels
        self.total_blocks = spec.total_blocks
        self.total_pages = spec.total_pages
        self.planes_per_chip = spec.planes_per_chip
        #: pages per chip, for the flat chip-of-PPN arithmetic.
        self.pages_per_chip = spec.blocks_per_chip * spec.pages_per_block

    # -- PPN <-> (chip, block-in-chip, page) ---------------------------

    def split_ppn(self, ppn: int) -> tuple[int, int, int]:
        """Return ``(chip, block_in_chip, page_in_block)`` for a flat PPN."""
        self.check_ppn(ppn)
        pbn, page = divmod(ppn, self.pages_per_block)
        chip, block = divmod(pbn, self.blocks_per_chip)
        return chip, block, page

    def make_ppn(self, chip: int, block: int, page: int) -> int:
        """Return the flat PPN for structured coordinates."""
        if not 0 <= chip < self.num_chips:
            raise AddressError(f"chip {chip} out of range [0, {self.num_chips})")
        if not 0 <= block < self.blocks_per_chip:
            raise AddressError(f"block {block} out of range [0, {self.blocks_per_chip})")
        if not 0 <= page < self.pages_per_block:
            raise AddressError(f"page {page} out of range [0, {self.pages_per_block})")
        return (chip * self.blocks_per_chip + block) * self.pages_per_block + page

    # -- PBN <-> (chip, block-in-chip) ---------------------------------

    def split_pbn(self, pbn: int) -> tuple[int, int]:
        """Return ``(chip, block_in_chip)`` for a flat PBN."""
        self.check_pbn(pbn)
        return divmod(pbn, self.blocks_per_chip)

    def make_pbn(self, chip: int, block: int) -> int:
        """Return the flat PBN for structured coordinates."""
        if not 0 <= chip < self.num_chips:
            raise AddressError(f"chip {chip} out of range [0, {self.num_chips})")
        if not 0 <= block < self.blocks_per_chip:
            raise AddressError(f"block {block} out of range [0, {self.blocks_per_chip})")
        return chip * self.blocks_per_chip + block

    # -- Flat helpers (hot path: inline range check, arithmetic only) ---

    def pbn_of_ppn(self, ppn: int) -> int:
        """Physical block number that contains ``ppn``."""
        if not 0 <= ppn < self.total_pages:
            self.check_ppn(ppn)
        return ppn // self.pages_per_block

    def page_of_ppn(self, ppn: int) -> int:
        """Page index inside the block for ``ppn`` (drives access speed)."""
        if not 0 <= ppn < self.total_pages:
            self.check_ppn(ppn)
        return ppn % self.pages_per_block

    def first_ppn_of_pbn(self, pbn: int) -> int:
        """PPN of page 0 of the given block."""
        if not 0 <= pbn < self.total_blocks:
            self.check_pbn(pbn)
        return pbn * self.pages_per_block

    def ppn_range_of_pbn(self, pbn: int) -> range:
        """All PPNs of a block, in programming order."""
        start = self.first_ppn_of_pbn(pbn)
        return range(start, start + self.pages_per_block)

    # -- Channel topology -----------------------------------------------

    def chip_of_ppn(self, ppn: int) -> int:
        """Chip owning ``ppn`` (flat arithmetic, range-checked)."""
        if not 0 <= ppn < self.total_pages:
            self.check_ppn(ppn)
        return ppn // self.pages_per_chip

    def plane_of_pbn(self, pbn: int) -> int:
        """Plane (inside its chip) holding block ``pbn``.

        Blocks interleave across planes (in-chip block ``b`` sits on
        plane ``b % planes_per_chip``), mirroring the chip-across-channel
        interleave: consecutive blocks of a chip land on different
        planes, so a striped free pool spreads plane load for free.
        """
        if not 0 <= pbn < self.total_blocks:
            self.check_pbn(pbn)
        return (pbn % self.blocks_per_chip) % self.planes_per_chip

    def plane_of_ppn(self, ppn: int) -> int:
        """Plane (inside its chip) holding ``ppn``."""
        if not 0 <= ppn < self.total_pages:
            self.check_ppn(ppn)
        return (
            ppn // self.pages_per_block % self.blocks_per_chip
        ) % self.planes_per_chip

    def channel_of_chip(self, chip: int) -> int:
        """Host-interface channel chip ``chip`` is wired to.

        Chips interleave across channels (chip ``c`` sits on channel
        ``c % num_channels``), the conventional multi-channel NAND
        wiring: consecutive chips land on different buses, so striped
        data spreads bus load as well as array load.
        """
        if not 0 <= chip < self.num_chips:
            raise AddressError(f"chip {chip} out of range [0, {self.num_chips})")
        return chip % self.num_channels

    # -- Validation -----------------------------------------------------

    def check_ppn(self, ppn: int) -> None:
        """Raise :class:`AddressError` if ``ppn`` is out of range."""
        if not 0 <= ppn < self.total_pages:
            raise AddressError(f"PPN {ppn} out of range [0, {self.total_pages})")

    def check_pbn(self, pbn: int) -> None:
        """Raise :class:`AddressError` if ``pbn`` is out of range."""
        if not 0 <= pbn < self.total_blocks:
            raise AddressError(f"PBN {pbn} out of range [0, {self.total_blocks})")
