"""Device specification for the 3D charge-trap NAND model.

:class:`NandSpec` carries the geometry and timing parameters of Table 1 of
the paper together with the knobs the evaluation sweeps (page size, page
access speed difference).  The nominal latencies are interpreted as the
*fastest-page* (bottom gate-stack layer) values; slower pages are derived
by the latency profile in :mod:`repro.nand.latency`.

Presets
-------
``table1_spec``
    The full 64 GB device of the paper's Table 1.  Faithful but large;
    use for spec-level tests, not trace replay.
``sim_spec``
    A proportionally scaled device (same pages/block, same latencies,
    same over-provisioning ratio) sized for pure-Python trace replay.
``tiny_spec``
    A miniature device for unit tests.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigError

#: Latency profile names accepted by :attr:`NandSpec.latency_profile`.
VALID_PROFILES = ("linear", "geometric", "physical", "uniform")

#: Bytes per mebibyte, used for transfer-rate conversion.
_MB = 1024 * 1024


@dataclass(frozen=True)
class NandSpec:
    """Geometry and timing parameters of a 3D charge-trap NAND device.

    Parameters mirror Table 1 of the paper.  ``speed_ratio`` is the
    "page access speed difference" the evaluation sweeps from 2x to 5x:
    the slowest (top-layer) page is ``speed_ratio`` times slower than
    the fastest (bottom-layer) page.
    """

    #: Bytes per page (Table 1: 16 KB; Fig. 12/15 also evaluate 8 KB).
    page_size: int = 16 * 1024
    #: Pages per physical block (Table 1: 384).
    pages_per_block: int = 384
    #: Physical blocks per chip.
    blocks_per_chip: int = 256
    #: Number of chips in the device (the paper models a single chip).
    num_chips: int = 1
    #: Number of independent host-interface channels (buses).  Chips are
    #: interleaved across channels (chip ``c`` sits on channel
    #: ``c % num_channels``); must divide ``num_chips`` evenly so every
    #: channel serves the same number of chips.  Only the timed replay
    #: mode models channel contention — sequential-mode latencies are
    #: per-operation sums and do not overlap transfers.
    num_channels: int = 1
    #: Planes per chip.  Blocks interleave across planes (block ``b`` of
    #: a chip sits on plane ``b % planes_per_chip``, mirroring the
    #: chip-across-channel interleave); must divide ``blocks_per_chip``
    #: so every plane holds the same number of blocks.  Planes buy
    #: concurrency only in the timed replay mode (each plane's page
    #: register works independently while the die I/O port and channel
    #: serialize transfers) and enable multi-plane program/erase fusion;
    #: sequential-mode latencies are unchanged.
    planes_per_chip: int = 1
    #: Number of gate stack layers a vertical channel crosses.  Pages map
    #: onto layers in order; several pages may share one layer.
    num_layers: int = 64
    #: Fastest-page array read latency in microseconds (Table 1: 49 us).
    read_us: float = 49.0
    #: Fastest-page program latency in microseconds (Table 1: 600 us).
    program_us: float = 600.0
    #: Block erase latency in microseconds (Table 1: 4 ms).
    erase_us: float = 4000.0
    #: Bus transfer rate in MB/s (Table 1 lists "533 Mbps"; we interpret
    #: the ONFI-DDR sense of 533 MT/s on an 8-bit bus = 533 MB/s, see
    #: DESIGN.md for the rationale).
    transfer_mb_per_s: float = 533.0
    #: Ratio of slowest-page to fastest-page latency (the paper's 2x-5x).
    speed_ratio: float = 2.0
    #: Shape of the per-layer latency curve; see VALID_PROFILES.
    latency_profile: str = "linear"
    #: How strongly program latency follows the per-layer read asymmetry:
    #: 0.0 = constant program time (reads sensing-limited are layer
    #: dependent, programs ISPP-loop-limited are not — the only model
    #: consistent with the paper's "0.0001%" write-latency parity),
    #: 1.0 = programs scale with the full read multiplier.
    program_asymmetry: float = 0.0
    #: Fraction of physical pages reserved as over-provisioning.
    op_ratio: float = 0.07

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size % 512:
            raise ConfigError(f"page_size must be a positive multiple of 512, got {self.page_size}")
        if self.pages_per_block <= 1:
            raise ConfigError(f"pages_per_block must be > 1, got {self.pages_per_block}")
        if self.blocks_per_chip <= 1:
            raise ConfigError(f"blocks_per_chip must be > 1, got {self.blocks_per_chip}")
        if self.num_chips < 1:
            raise ConfigError(f"num_chips must be >= 1, got {self.num_chips}")
        if self.num_channels < 1:
            raise ConfigError(f"num_channels must be >= 1, got {self.num_channels}")
        if self.num_chips % self.num_channels:
            raise ConfigError(
                f"num_channels ({self.num_channels}) must divide num_chips "
                f"({self.num_chips}) so channels serve equal chip counts"
            )
        if self.planes_per_chip < 1:
            raise ConfigError(
                f"planes_per_chip must be >= 1, got {self.planes_per_chip}"
            )
        if self.blocks_per_chip % self.planes_per_chip:
            raise ConfigError(
                f"planes_per_chip ({self.planes_per_chip}) must divide "
                f"blocks_per_chip ({self.blocks_per_chip}) so planes hold "
                f"equal block counts"
            )
        if self.num_layers < 1:
            raise ConfigError(f"num_layers must be >= 1, got {self.num_layers}")
        if self.num_layers > self.pages_per_block:
            raise ConfigError(
                f"num_layers ({self.num_layers}) cannot exceed pages_per_block "
                f"({self.pages_per_block}): each layer holds at least one page"
            )
        if self.speed_ratio < 1.0:
            raise ConfigError(f"speed_ratio must be >= 1.0, got {self.speed_ratio}")
        if self.latency_profile not in VALID_PROFILES:
            raise ConfigError(
                f"latency_profile must be one of {VALID_PROFILES}, got {self.latency_profile!r}"
            )
        if not 0.0 <= self.op_ratio < 0.5:
            raise ConfigError(f"op_ratio must be in [0, 0.5), got {self.op_ratio}")
        if not 0.0 <= self.program_asymmetry <= 1.0:
            raise ConfigError(
                f"program_asymmetry must be in [0, 1], got {self.program_asymmetry}"
            )
        for name in ("read_us", "program_us", "erase_us", "transfer_mb_per_s"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive, got {getattr(self, name)}")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------

    @property
    def total_blocks(self) -> int:
        """Physical blocks across all chips."""
        return self.blocks_per_chip * self.num_chips

    @property
    def total_pages(self) -> int:
        """Physical pages across all chips."""
        return self.total_blocks * self.pages_per_block

    @property
    def physical_bytes(self) -> int:
        """Raw capacity in bytes."""
        return self.total_pages * self.page_size

    @property
    def logical_pages(self) -> int:
        """Host-visible pages after subtracting over-provisioning."""
        return int(self.total_pages * (1.0 - self.op_ratio))

    @property
    def logical_bytes(self) -> int:
        """Host-visible capacity in bytes."""
        return self.logical_pages * self.page_size

    @property
    def full_map_entries(self) -> int:
        """Entries a dense in-RAM page map would allocate (l2p + p2l);
        what :data:`repro.ftl.mapping.FULL_MAP_MAX_ENTRIES` bounds."""
        return self.logical_pages + self.total_pages

    @property
    def block_bytes(self) -> int:
        """Bytes per physical block."""
        return self.pages_per_block * self.page_size

    @property
    def chips_per_channel(self) -> int:
        """Chips sharing one host-interface channel (bus).

        The chip -> channel mapping itself lives in one place only:
        :meth:`repro.nand.geometry.Geometry.channel_of_chip`.
        """
        return self.num_chips // self.num_channels

    @property
    def blocks_per_plane(self) -> int:
        """Blocks each plane of a chip holds.

        The block -> plane mapping itself lives in one place only:
        :meth:`repro.nand.geometry.Geometry.plane_of_pbn`.
        """
        return self.blocks_per_chip // self.planes_per_chip

    @property
    def pages_per_layer(self) -> int:
        """How many consecutive page indices share one gate stack layer.

        When ``pages_per_block`` is not an exact multiple of ``num_layers``
        the first layers absorb the remainder; :meth:`layer_of_page`
        handles the exact mapping.
        """
        return max(1, self.pages_per_block // self.num_layers)

    def layer_of_page(self, page_index: int) -> int:
        """Map a page index inside a block to its gate stack layer.

        Page 0 sits at the *top* layer (widest channel opening, slowest)
        and the last page at the *bottom* layer (narrowest, fastest),
        consistent with the in-order programming direction used by the
        paper's virtual-block lifecycle.
        """
        if not 0 <= page_index < self.pages_per_block:
            raise ConfigError(
                f"page_index {page_index} out of range [0, {self.pages_per_block})"
            )
        layer = page_index * self.num_layers // self.pages_per_block
        return min(layer, self.num_layers - 1)

    # ------------------------------------------------------------------
    # Timing helpers
    # ------------------------------------------------------------------

    def transfer_us(self, nbytes: int | None = None) -> float:
        """Bus transfer time in microseconds for ``nbytes`` (default: one page)."""
        if nbytes is None:
            nbytes = self.page_size
        return nbytes / (self.transfer_mb_per_s * _MB) * 1e6

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def replace(self, **changes: object) -> "NandSpec":
        """Return a copy of the spec with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        """Human-readable multi-line summary (mirrors Table 1)."""
        return "\n".join(
            [
                f"Flash size           {self.physical_bytes / 2**30:.2f} GiB "
                f"({self.logical_bytes / 2**30:.2f} GiB logical)",
                f"Page size            {self.page_size // 1024} KiB",
                f"Pages per block      {self.pages_per_block}",
                f"Gate stack layers    {self.num_layers}",
                f"Page write latency   {self.program_us:.0f} us (fastest page)",
                f"Page read latency    {self.read_us:.0f} us (fastest page)",
                f"Data transfer rate   {self.transfer_mb_per_s:.0f} MB/s",
                f"Block erase time     {self.erase_us / 1000:.0f} ms",
                f"Speed difference     {self.speed_ratio:.1f}x ({self.latency_profile})",
            ]
            + (
                [f"Chips / channels     {self.num_chips} / {self.num_channels}"]
                if self.num_chips > 1 or self.num_channels > 1
                else []
            )
            + (
                [f"Planes per chip      {self.planes_per_chip}"]
                if self.planes_per_chip > 1
                else []
            )
        )


def table1_spec(**overrides: object) -> NandSpec:
    """The paper's Table 1 device: 64 GB, 16 KB pages, 384 pages/block.

    64 GiB / (16 KiB * 384) = 10922.67 blocks; we round down to 10922.
    """
    spec = NandSpec(
        page_size=16 * 1024,
        pages_per_block=384,
        blocks_per_chip=10922,
        num_chips=1,
        num_layers=64,
        read_us=49.0,
        program_us=600.0,
        erase_us=4000.0,
        transfer_mb_per_s=533.0,
    )
    return spec.replace(**overrides) if overrides else spec


def sim_spec(**overrides: object) -> NandSpec:
    """A proportionally scaled device for trace-driven simulation.

    Keeps every per-page/per-block parameter of Table 1 and shrinks only
    the block count, so relative results (PPB vs conventional) transfer.
    Default: 256 blocks * 384 pages * 16 KiB = 1.5 GiB raw.
    """
    spec = NandSpec(blocks_per_chip=256)
    return spec.replace(**overrides) if overrides else spec


def tiny_spec(**overrides: object) -> NandSpec:
    """A miniature device for fast unit tests (64 blocks of 16 pages)."""
    spec = NandSpec(
        page_size=2048,
        pages_per_block=16,
        blocks_per_chip=64,
        num_layers=8,
        op_ratio=0.125,
    )
    return spec.replace(**overrides) if overrides else spec
