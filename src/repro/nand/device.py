"""Multi-chip NAND device with flat page addressing.

The device presents the flat PPN/PBN address space the FTLs use and
routes commands to the owning chip.  All timing comes back as a latency
in microseconds; the caller (FTL / SSD front end) decides how latencies
compose (sequentially for a single queue, overlapped by the DES engine
when channel parallelism is enabled).

Service reporting (the op log)
------------------------------
The timed replay mode needs to know *which chip* each command busied
and for how long, split into array time (occupies only the chip) and
bus-transfer time (occupies the chip *and* its channel).  Between
:meth:`NandDevice.begin_oplog` and :meth:`NandDevice.end_oplog` every
command appends one ``(chip, plane, array_us, transfer_us)`` segment —
GC, merges and refresh relocations included, since they flow through
the same command entry points.  The plane index lets the timed replay
overlay per-plane concurrency on multi-plane devices; fused multi-plane
commands append one segment per sibling plane, each carrying the shared
array time (the planes really are busy in parallel, so — unlike
:meth:`note_recovery` — the logged busy time deliberately exceeds the
sequential bill).  With no log armed (sequential replays, warm fill)
the per-command cost is a single ``is not None`` check.
"""

from __future__ import annotations

from typing import Any

from repro.errors import AddressError
from repro.nand.chip import NandChip
from repro.nand.geometry import Geometry
from repro.nand.latency import LatencyModel
from repro.nand.spec import NandSpec
from repro.nand.stats import NandStats


class NandDevice:
    """A set of :class:`NandChip` behind one flat address space."""

    def __init__(self, spec: NandSpec) -> None:
        self.spec = spec
        self.geometry = Geometry(spec)
        self.latency = LatencyModel(spec)
        self.chips = [NandChip(i, spec, self.latency) for i in range(spec.num_chips)]
        # Address-arithmetic constants, hoisted so the per-op commands
        # below stay free of the old double delegation through
        # Geometry.split_ppn (two extra function calls per simulated op).
        self._pages_per_block = spec.pages_per_block
        self._blocks_per_chip = spec.blocks_per_chip
        self._total_pages = spec.total_pages
        self._total_blocks = spec.total_blocks
        self._planes = spec.planes_per_chip
        #: armed service-report log (see module docstring); ``None`` off.
        self.oplog: list[tuple[int, int, float, float]] | None = None
        self._page_transfer_us = self.latency.transfer_us()
        if spec.num_chips == 1:
            # Single-chip devices (every spec the paper sweeps) can skip
            # the chip-select divmod for the block-addressed queries:
            # flat PBN == in-chip block, so the chip methods — whose own
            # range checks subsume check_pbn — are bound directly.
            self.next_page = self.chips[0].next_page  # type: ignore[method-assign]
            self.is_block_full = self.chips[0].is_block_full  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Service reporting (timed-mode op log)
    # ------------------------------------------------------------------

    def begin_oplog(self) -> list[tuple[int, int, float, float]]:
        """Arm the service report; returns the (live) segment list."""
        self.oplog = []
        return self.oplog

    def end_oplog(self) -> list[tuple[int, int, float, float]]:
        """Disarm the service report; returns the collected segments."""
        ops, self.oplog = self.oplog, None
        return ops if ops is not None else []

    def note_retry(self, ppn: int, retry_us: float) -> None:
        """Report ECC read-retry latency against the chip owning ``ppn``.

        Each retry step re-senses the array *and* re-transfers the page
        (see :meth:`LatencyModel.retry_read_us`), so the step's transfer
        share is logged in the bus slot — retries contend for the
        channel exactly like first-try reads do.  No-op with no log
        armed.
        """
        log = self.oplog
        if log is not None:
            page = ppn % self._pages_per_block
            transfer = self._page_transfer_us
            # retry_step_us defines what one step costs (array +
            # transfer); deriving the split from it keeps this report
            # coupled to the latency actually billed.
            step_us = self.latency.retry_step_us[page]
            transfer_share = retry_us * (transfer / step_us)
            block_in_chip = ppn // self._pages_per_block % self._blocks_per_chip
            log.append(
                (
                    self.geometry.chip_of_ppn(ppn),
                    block_in_chip % self._planes,
                    retry_us - transfer_share,
                    transfer_share,
                )
            )

    def note_recovery(self, ppn: int, recovery_us: float) -> None:
        """Report driver-level uncorrectable-read recovery as device work.

        Models the superpage-RAID rebuild a real driver runs when ECC
        gives up on ``ppn``: the stripe's pages are re-read from *every*
        chip, so the recovery latency is split into one equal segment
        per chip (array/transfer ratio of a retry step on the failing
        page), occupying all chips and their channel buses in the timed
        replay instead of silently inflating one host latency.  The
        total logged busy time equals ``recovery_us`` — exactly what the
        sequential accounting bills — so the two modes stay consistent.
        No-op with no log armed.
        """
        log = self.oplog
        if log is None or recovery_us <= 0.0:
            return
        num_chips = len(self.chips)
        page = ppn % self._pages_per_block
        step_us = self.latency.retry_step_us[page]
        share = recovery_us / num_chips
        transfer_share = share * (self._page_transfer_us / step_us)
        array_share = share - transfer_share
        # Each chip re-reads its page of the stripe; the stripe sits at
        # the same in-chip position on every chip, hence one plane index.
        plane = ppn // self._pages_per_block % self._blocks_per_chip % self._planes
        for chip in range(num_chips):
            log.append((chip, plane, array_share, transfer_share))

    # ------------------------------------------------------------------
    # Flat-address commands (hot path)
    # ------------------------------------------------------------------

    def read_ppn(self, ppn: int, include_transfer: bool = True) -> float:
        """Read the page at flat address ``ppn``; returns latency (us)."""
        if not 0 <= ppn < self._total_pages:
            self.geometry.check_ppn(ppn)
        pbn, page = divmod(ppn, self._pages_per_block)
        chip, block = divmod(pbn, self._blocks_per_chip)
        log = self.oplog
        if log is not None:
            log.append(
                (
                    chip,
                    block % self._planes,
                    self.latency.read_array_us[page],
                    self._page_transfer_us if include_transfer else 0.0,
                )
            )
        return self.chips[chip].read(block, page, include_transfer=include_transfer)

    def program_ppn(self, ppn: int, tag: Any = None, include_transfer: bool = True) -> float:
        """Program the page at flat address ``ppn``; returns latency (us)."""
        if not 0 <= ppn < self._total_pages:
            self.geometry.check_ppn(ppn)
        pbn, page = divmod(ppn, self._pages_per_block)
        chip, block = divmod(pbn, self._blocks_per_chip)
        log = self.oplog
        if log is not None:
            log.append(
                (
                    chip,
                    block % self._planes,
                    self.latency.program_array_us[page],
                    self._page_transfer_us if include_transfer else 0.0,
                )
            )
        return self.chips[chip].program(block, page, tag=tag, include_transfer=include_transfer)

    def copy_page(self, src_ppn: int, dst_ppn: int) -> tuple[float, float]:
        """Copyback relocation: internal read of ``src_ppn`` + program of
        its tag into ``dst_ppn``, no bus transfers.

        Byte-for-byte equivalent to the ``read_ppn`` / ``tag`` /
        ``program_ppn`` triple GC and merges used to issue, fused into
        one command; falls back to the triple when the pages live on
        different chips (off-chip copyback needs the bus-free internal
        move modeled per chip).  Returns ``(read_us, program_us)``.
        """
        if not 0 <= src_ppn < self._total_pages:
            self.geometry.check_ppn(src_ppn)
        if not 0 <= dst_ppn < self._total_pages:
            self.geometry.check_ppn(dst_ppn)
        src_pbn, src_page = divmod(src_ppn, self._pages_per_block)
        dst_pbn, dst_page = divmod(dst_ppn, self._pages_per_block)
        src_chip, src_block = divmod(src_pbn, self._blocks_per_chip)
        dst_chip, dst_block = divmod(dst_pbn, self._blocks_per_chip)
        if src_chip == dst_chip:
            result = self.chips[src_chip].copyback(src_block, src_page, dst_block, dst_page)
        else:
            read_us = self.chips[src_chip].read(src_block, src_page, include_transfer=False)
            tag = self.chips[src_chip].tag(src_block, src_page)
            program_us = self.chips[dst_chip].program(
                dst_block, dst_page, tag=tag, include_transfer=False
            )
            result = (read_us, program_us)
        log = self.oplog
        if log is not None:
            planes = self._planes
            log.append((src_chip, src_block % planes, result[0], 0.0))
            log.append((dst_chip, dst_block % planes, result[1], 0.0))
        return result

    def erase_pbn(self, pbn: int) -> float:
        """Erase the block at flat address ``pbn``; returns latency (us)."""
        chip, block = self.geometry.split_pbn(pbn)
        latency = self.chips[chip].erase(block)
        log = self.oplog
        if log is not None:
            log.append((chip, block % self._planes, latency, 0.0))
        return latency

    def _split_siblings(self, pbns: "list[int]", op: str) -> tuple[int, list[int]]:
        """Resolve a fused command's blocks to (chip, in-chip blocks).

        All blocks must live on one chip; the per-plane distinctness
        check belongs to the chip (:meth:`NandChip._check_sibling_planes`).
        """
        if not pbns:
            raise AddressError(f"{op} of zero blocks")
        chips_blocks = [self.geometry.split_pbn(pbn) for pbn in pbns]
        chip = chips_blocks[0][0]
        if any(c != chip for c, _ in chips_blocks):
            raise AddressError(
                f"{op} blocks {pbns} span chips "
                f"{sorted({c for c, _ in chips_blocks})}; siblings share one chip"
            )
        return chip, [block for _, block in chips_blocks]

    def program_multi_ppn(
        self,
        ppns: "list[int]",
        tags: "list[Any] | None" = None,
        include_transfer: bool = True,
    ) -> float:
        """Multi-plane program: same page index on sibling-plane blocks.

        The planes share one array time while the page-register loads
        (transfers) serialize; returns — and the op log bills per plane —
        accordingly: each sibling's segment carries the shared array
        time plus its own transfer.  Raises
        :class:`~repro.errors.AddressError` unless the PPNs address one
        chip, distinct planes, and one common page index.
        """
        chip, blocks = self._split_siblings(
            [ppn // self._pages_per_block for ppn in ppns], "multi-plane program"
        )
        pages = [ppn % self._pages_per_block for ppn in ppns]
        page = pages[0]
        if any(p != page for p in pages):
            raise AddressError(
                f"multi-plane program pages {sorted(set(pages))} differ; "
                f"sibling planes program one page index"
            )
        latency = self.chips[chip].multi_program(
            blocks, page, tags=tags, include_transfer=include_transfer
        )
        log = self.oplog
        if log is not None:
            array_us = self.latency.program_array_us[page]
            transfer = self._page_transfer_us if include_transfer else 0.0
            planes = self._planes
            for block in blocks:
                log.append((chip, block % planes, array_us, transfer))
        return latency

    def erase_multi_pbn(self, pbns: "list[int]") -> float:
        """Multi-plane erase: sibling-plane blocks for one array time.

        Every block is erased (wear counted per block) but the planes
        work in parallel, so the returned latency is a single erase
        time; the op log gets one segment per plane, each carrying that
        shared array time.  Raises :class:`~repro.errors.AddressError`
        unless the PBNs address one chip and distinct planes.
        """
        chip, blocks = self._split_siblings(pbns, "multi-plane erase")
        latency = self.chips[chip].multi_erase(blocks)
        log = self.oplog
        if log is not None:
            planes = self._planes
            for block in blocks:
                log.append((chip, block % planes, latency, 0.0))
        return latency

    # ------------------------------------------------------------------
    # Flat-address queries
    # ------------------------------------------------------------------

    def is_programmed(self, ppn: int) -> bool:
        """Whether the page at ``ppn`` currently holds data."""
        chip, block, page = self.geometry.split_ppn(ppn)
        return self.chips[chip].is_programmed(block, page)

    def is_block_full(self, pbn: int) -> bool:
        """Whether every page of block ``pbn`` is programmed."""
        if not 0 <= pbn < self._total_blocks:
            self.geometry.check_pbn(pbn)
        chip, block = divmod(pbn, self._blocks_per_chip)
        return self.chips[chip].is_block_full(block)

    def next_page(self, pbn: int) -> int:
        """Next programmable page index of block ``pbn``."""
        if not 0 <= pbn < self._total_blocks:
            self.geometry.check_pbn(pbn)
        chip, block = divmod(pbn, self._blocks_per_chip)
        return self.chips[chip].next_page(block)

    def tag(self, ppn: int) -> Any:
        """Tag stored at ``ppn`` when it was programmed."""
        if not 0 <= ppn < self._total_pages:
            self.geometry.check_ppn(ppn)
        pbn, page = divmod(ppn, self._pages_per_block)
        chip, block = divmod(pbn, self._blocks_per_chip)
        return self.chips[chip].tag(block, page)

    def erase_count(self, pbn: int) -> int:
        """Lifetime erase count of block ``pbn``."""
        chip, block = self.geometry.split_pbn(pbn)
        return self.chips[chip].erase_count(block)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def stats(self) -> NandStats:
        """Device-wide counters summed over chips."""
        total = NandStats()
        for chip in self.chips:
            total = total.merge(chip.stats)
        return total

    def total_erases(self) -> int:
        """Total block erases across the device (Fig. 18's metric)."""
        return sum(chip.stats.erases for chip in self.chips)

    def wear_spread(self) -> int:
        """Max-min per-block erase count across the device."""
        per_chip = [
            chip.erase_histogram.spread(self.spec.blocks_per_chip) for chip in self.chips
        ]
        return max(per_chip, default=0)
