"""Multi-chip NAND device with flat page addressing.

The device presents the flat PPN/PBN address space the FTLs use and
routes commands to the owning chip.  All timing comes back as a latency
in microseconds; the caller (FTL / SSD front end) decides how latencies
compose (sequentially for a single queue, overlapped by the DES engine
when channel parallelism is enabled).
"""

from __future__ import annotations

from typing import Any

from repro.nand.chip import NandChip
from repro.nand.geometry import Geometry
from repro.nand.latency import LatencyModel
from repro.nand.spec import NandSpec
from repro.nand.stats import NandStats


class NandDevice:
    """A set of :class:`NandChip` behind one flat address space."""

    def __init__(self, spec: NandSpec) -> None:
        self.spec = spec
        self.geometry = Geometry(spec)
        self.latency = LatencyModel(spec)
        self.chips = [NandChip(i, spec, self.latency) for i in range(spec.num_chips)]

    # ------------------------------------------------------------------
    # Flat-address commands (hot path)
    # ------------------------------------------------------------------

    def read_ppn(self, ppn: int, include_transfer: bool = True) -> float:
        """Read the page at flat address ``ppn``; returns latency (us)."""
        chip, block, page = self.geometry.split_ppn(ppn)
        return self.chips[chip].read(block, page, include_transfer=include_transfer)

    def program_ppn(self, ppn: int, tag: Any = None, include_transfer: bool = True) -> float:
        """Program the page at flat address ``ppn``; returns latency (us)."""
        chip, block, page = self.geometry.split_ppn(ppn)
        return self.chips[chip].program(block, page, tag=tag, include_transfer=include_transfer)

    def erase_pbn(self, pbn: int) -> float:
        """Erase the block at flat address ``pbn``; returns latency (us)."""
        chip, block = self.geometry.split_pbn(pbn)
        return self.chips[chip].erase(block)

    # ------------------------------------------------------------------
    # Flat-address queries
    # ------------------------------------------------------------------

    def is_programmed(self, ppn: int) -> bool:
        """Whether the page at ``ppn`` currently holds data."""
        chip, block, page = self.geometry.split_ppn(ppn)
        return self.chips[chip].is_programmed(block, page)

    def is_block_full(self, pbn: int) -> bool:
        """Whether every page of block ``pbn`` is programmed."""
        chip, block = self.geometry.split_pbn(pbn)
        return self.chips[chip].is_block_full(block)

    def next_page(self, pbn: int) -> int:
        """Next programmable page index of block ``pbn``."""
        chip, block = self.geometry.split_pbn(pbn)
        return self.chips[chip].next_page(block)

    def tag(self, ppn: int) -> Any:
        """Tag stored at ``ppn`` when it was programmed."""
        chip, block, page = self.geometry.split_ppn(ppn)
        return self.chips[chip].tag(block, page)

    def erase_count(self, pbn: int) -> int:
        """Lifetime erase count of block ``pbn``."""
        chip, block = self.geometry.split_pbn(pbn)
        return self.chips[chip].erase_count(block)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def stats(self) -> NandStats:
        """Device-wide counters summed over chips."""
        total = NandStats()
        for chip in self.chips:
            total = total.merge(chip.stats)
        return total

    def total_erases(self) -> int:
        """Total block erases across the device (Fig. 18's metric)."""
        return sum(chip.stats.erases for chip in self.chips)

    def wear_spread(self) -> int:
        """Max-min per-block erase count across the device."""
        per_chip = [
            chip.erase_histogram.spread(self.spec.blocks_per_chip) for chip in self.chips
        ]
        return max(per_chip, default=0)
