"""Single NAND chip command model.

The chip enforces the two hardware rules every FTL must respect:

* **Ascending-order programming** — pages of a block must be programmed
  in ascending page order (skipping forward is allowed, going back is
  not).  This is what forces the paper's virtual block 2n+1 to wait
  until virtual block 2n is full.
* **Erase-before-write** — a page can only be programmed once per
  erase cycle; re-programming requires erasing the whole block.

A per-block write pointer records the lowest page index still
programmable; a programmed bitmap records which pages actually hold
data (they differ only when an FTL deliberately skips pages, as FAST's
merge path does for never-written logical pages).

The chip can also store an opaque *tag* per programmed page.  The FTL
uses this to carry the logical page number + a version token, which the
test suite checks against an oracle to prove no data is ever lost or
stale-served across GC.
"""

from __future__ import annotations

from typing import Any

from repro.errors import (
    AddressError,
    ProgramOrderError,
    ReadFreePageError,
)
from repro.nand.latency import LatencyModel
from repro.nand.spec import NandSpec
from repro.nand.stats import EraseHistogram, NandStats


class NandChip:
    """One NAND die: blocks of pages with asymmetric per-page latency.

    The per-block state (write pointer, programmed bitmap, erase count)
    lives in flat Python lists/bytearrays: a trace replay issues one
    read or program per simulated page, and at that granularity numpy
    scalar indexing costs more than the whole remaining command.  The
    address checks stay, but as inline range compares that only fall
    into the raising helpers off the happy path.
    """

    def __init__(self, chip_id: int, spec: NandSpec, latency: LatencyModel | None = None) -> None:
        self.chip_id = chip_id
        self.spec = spec
        self.latency = latency if latency is not None else LatencyModel(spec)
        self._num_blocks = spec.blocks_per_chip
        self._num_pages = spec.pages_per_block
        #: lowest page index still programmable, per block; == pages_per_block
        #: means no page of the block can be programmed until erase.
        self.write_ptr: list[int] = [0] * spec.blocks_per_chip
        #: which pages hold data (nonzero between program and erase).
        self.programmed: list[bytearray] = [
            bytearray(spec.pages_per_block) for _ in range(spec.blocks_per_chip)
        ]
        #: lifetime erase count per block.
        self.erase_counts: list[int] = [0] * spec.blocks_per_chip
        #: opaque per-page tags: block -> {page: tag}; populated lazily.
        self._tags: dict[int, dict[int, Any]] = {}
        self.stats = NandStats()
        self.erase_histogram = EraseHistogram()
        # Hot-path views of the latency tables (see LatencyModel).
        self._read_total_us = self.latency.read_total_us
        self._read_array_us = self.latency.read_array_us
        self._program_total_us = self.latency.program_total_us
        self._program_array_us = self.latency.program_array_us

    # ------------------------------------------------------------------
    # Address checks
    # ------------------------------------------------------------------

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.spec.blocks_per_chip:
            raise AddressError(
                f"chip {self.chip_id}: block {block} out of range "
                f"[0, {self.spec.blocks_per_chip})"
            )

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.spec.pages_per_block:
            raise AddressError(
                f"chip {self.chip_id}: page {page} out of range "
                f"[0, {self.spec.pages_per_block})"
            )

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def read(self, block: int, page: int, include_transfer: bool = True) -> float:
        """Read one page; returns the latency in microseconds."""
        if not 0 <= block < self._num_blocks:
            self._check_block(block)
        if not 0 <= page < self._num_pages:
            self._check_page(page)
        if not self.programmed[block][page]:
            raise ReadFreePageError(
                f"chip {self.chip_id}: read of unprogrammed page "
                f"(block {block}, page {page})"
            )
        latency = (
            self._read_total_us[page] if include_transfer else self._read_array_us[page]
        )
        stats = self.stats
        stats.reads += 1
        stats.read_us += latency
        return latency

    def program(
        self,
        block: int,
        page: int,
        tag: Any = None,
        include_transfer: bool = True,
    ) -> float:
        """Program one page; returns the latency in microseconds.

        Raises :class:`ProgramOrderError` unless ``page`` is at or after
        the block's write pointer (ascending order; this single check
        also covers erase-before-write, since every page behind the
        pointer has already been programmed or permanently skipped for
        this erase cycle).
        """
        if not 0 <= block < self._num_blocks:
            self._check_block(block)
        if not 0 <= page < self._num_pages:
            self._check_page(page)
        expected = self.write_ptr[block]
        if page < expected:
            raise ProgramOrderError(
                f"chip {self.chip_id}: non-ascending program of block {block}: "
                f"got page {page}, write pointer at {expected}"
            )
        self.write_ptr[block] = page + 1
        self.programmed[block][page] = 1
        if tag is not None:
            tags = self._tags.get(block)
            if tags is None:
                tags = self._tags[block] = {}
            tags[page] = tag
        latency = (
            self._program_total_us[page]
            if include_transfer
            else self._program_array_us[page]
        )
        stats = self.stats
        stats.programs += 1
        stats.program_us += latency
        return latency

    def copyback(
        self, src_block: int, src_page: int, dst_block: int, dst_page: int
    ) -> tuple[float, float]:
        """Internal read + program relocating one page within this chip.

        Equivalent to ``read(src, include_transfer=False)`` followed by
        ``program(dst, tag=tag(src), include_transfer=False)`` — same
        checks, same stats, same latencies — fused into one call because
        GC/merge relocation is the hottest multi-command sequence a
        replay issues.  Returns ``(read_us, program_us)``.
        """
        if not 0 <= src_block < self._num_blocks:
            self._check_block(src_block)
        if not 0 <= src_page < self._num_pages:
            self._check_page(src_page)
        if not 0 <= dst_block < self._num_blocks:
            self._check_block(dst_block)
        if not 0 <= dst_page < self._num_pages:
            self._check_page(dst_page)
        if not self.programmed[src_block][src_page]:
            raise ReadFreePageError(
                f"chip {self.chip_id}: read of unprogrammed page "
                f"(block {src_block}, page {src_page})"
            )
        expected = self.write_ptr[dst_block]
        if dst_page < expected:
            raise ProgramOrderError(
                f"chip {self.chip_id}: non-ascending program of block {dst_block}: "
                f"got page {dst_page}, write pointer at {expected}"
            )
        read_us = self._read_array_us[src_page]
        src_tags = self._tags.get(src_block)
        tag = src_tags.get(src_page) if src_tags is not None else None
        self.write_ptr[dst_block] = dst_page + 1
        self.programmed[dst_block][dst_page] = 1
        if tag is not None:
            self._tags.setdefault(dst_block, {})[dst_page] = tag
        program_us = self._program_array_us[dst_page]
        stats = self.stats
        stats.reads += 1
        stats.read_us += read_us
        stats.programs += 1
        stats.program_us += program_us
        return read_us, program_us

    def erase(self, block: int) -> float:
        """Erase a block; returns the latency in microseconds."""
        self._check_block(block)
        self.write_ptr[block] = 0
        self.programmed[block] = bytearray(self._num_pages)
        self.erase_counts[block] += 1
        self._tags.pop(block, None)
        latency = self.latency.erase_us()
        self.stats.record_erase(latency)
        self.erase_histogram.record(block)
        return latency

    def _check_sibling_planes(self, blocks: "list[int]", op: str) -> None:
        """Fused commands must address one block per distinct plane."""
        if not blocks:
            raise AddressError(f"chip {self.chip_id}: {op} of zero blocks")
        planes = self.spec.planes_per_chip
        seen: set[int] = set()
        for block in blocks:
            if not 0 <= block < self._num_blocks:
                self._check_block(block)
            plane = block % planes
            if plane in seen:
                raise AddressError(
                    f"chip {self.chip_id}: {op} blocks {blocks} do not sit "
                    f"on distinct planes (plane {plane} repeated)"
                )
            seen.add(plane)

    def multi_program(
        self,
        blocks: "list[int]",
        page: int,
        tags: "list[Any] | None" = None,
        include_transfer: bool = True,
    ) -> float:
        """Multi-plane program: one page per sibling plane, fused.

        All planes program the *same* page index (the multi-plane
        addressing rule real chips enforce) and share one array time;
        each plane's page register is still loaded separately, so the
        transfers serialize.  Returns the fused latency
        ``n * transfer + array`` (array only without transfer), which is
        also what the stats bill — the die is busy exactly that long.
        """
        self._check_sibling_planes(blocks, "multi-plane program")
        if not 0 <= page < self._num_pages:
            self._check_page(page)
        for block in blocks:
            expected = self.write_ptr[block]
            if page < expected:
                raise ProgramOrderError(
                    f"chip {self.chip_id}: non-ascending program of block "
                    f"{block}: got page {page}, write pointer at {expected}"
                )
        for index, block in enumerate(blocks):
            self.write_ptr[block] = page + 1
            self.programmed[block][page] = 1
            tag = tags[index] if tags is not None else None
            if tag is not None:
                self._tags.setdefault(block, {})[page] = tag
        array_us = self._program_array_us[page]
        latency = array_us
        if include_transfer:
            latency += (self._program_total_us[page] - array_us) * len(blocks)
        stats = self.stats
        stats.programs += len(blocks)
        stats.program_us += latency
        return latency

    def multi_erase(self, blocks: "list[int]") -> float:
        """Multi-plane erase: sibling-plane blocks erased for one array time.

        Every block resets (write pointer, programmed map, wear count)
        exactly as :meth:`erase` would, but the planes erase in parallel,
        so the chip is busy — and the stats bill — one erase latency
        total.  Returns that fused latency.
        """
        self._check_sibling_planes(blocks, "multi-plane erase")
        for block in blocks:
            self.write_ptr[block] = 0
            self.programmed[block] = bytearray(self._num_pages)
            self.erase_counts[block] += 1
            self._tags.pop(block, None)
            self.erase_histogram.record(block)
        latency = self.latency.erase_us()
        self.stats.record_erase(latency)
        self.stats.erases += len(blocks) - 1
        return latency

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------

    def is_programmed(self, block: int, page: int) -> bool:
        """Whether the page currently holds data."""
        self._check_block(block)
        self._check_page(page)
        return bool(self.programmed[block][page])

    def is_block_full(self, block: int) -> bool:
        """Whether the block has no programmable pages left this cycle."""
        if not 0 <= block < self._num_blocks:
            self._check_block(block)
        return self.write_ptr[block] == self._num_pages

    def next_page(self, block: int) -> int:
        """Next programmable page index of the block (== pages_per_block if full)."""
        if not 0 <= block < self._num_blocks:
            self._check_block(block)
        return self.write_ptr[block]

    def tag(self, block: int, page: int) -> Any:
        """Tag stored when the page was programmed (None if untagged)."""
        if not 0 <= block < self._num_blocks:
            self._check_block(block)
        if not 0 <= page < self._num_pages:
            self._check_page(page)
        tags = self._tags.get(block)
        return tags.get(page) if tags is not None else None

    def erase_count(self, block: int) -> int:
        """Lifetime erase count of the block."""
        self._check_block(block)
        return self.erase_counts[block]
