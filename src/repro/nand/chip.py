"""Single NAND chip command model.

The chip enforces the two hardware rules every FTL must respect:

* **Ascending-order programming** — pages of a block must be programmed
  in ascending page order (skipping forward is allowed, going back is
  not).  This is what forces the paper's virtual block 2n+1 to wait
  until virtual block 2n is full.
* **Erase-before-write** — a page can only be programmed once per
  erase cycle; re-programming requires erasing the whole block.

A per-block write pointer records the lowest page index still
programmable; a programmed bitmap records which pages actually hold
data (they differ only when an FTL deliberately skips pages, as FAST's
merge path does for never-written logical pages).

The chip can also store an opaque *tag* per programmed page.  The FTL
uses this to carry the logical page number + a version token, which the
test suite checks against an oracle to prove no data is ever lost or
stale-served across GC.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import (
    AddressError,
    ProgramOrderError,
    ReadFreePageError,
)
from repro.nand.latency import LatencyModel
from repro.nand.spec import NandSpec
from repro.nand.stats import EraseHistogram, NandStats


class NandChip:
    """One NAND die: blocks of pages with asymmetric per-page latency."""

    def __init__(self, chip_id: int, spec: NandSpec, latency: LatencyModel | None = None) -> None:
        self.chip_id = chip_id
        self.spec = spec
        self.latency = latency if latency is not None else LatencyModel(spec)
        #: lowest page index still programmable, per block; == pages_per_block
        #: means no page of the block can be programmed until erase.
        self.write_ptr = np.zeros(spec.blocks_per_chip, dtype=np.int32)
        #: which pages hold data (True between program and erase).
        self.programmed = np.zeros(
            (spec.blocks_per_chip, spec.pages_per_block), dtype=bool
        )
        #: lifetime erase count per block.
        self.erase_counts = np.zeros(spec.blocks_per_chip, dtype=np.int64)
        #: opaque per-page tags: block -> {page: tag}; populated lazily.
        self._tags: dict[int, dict[int, Any]] = {}
        self.stats = NandStats()
        self.erase_histogram = EraseHistogram()

    # ------------------------------------------------------------------
    # Address checks
    # ------------------------------------------------------------------

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.spec.blocks_per_chip:
            raise AddressError(
                f"chip {self.chip_id}: block {block} out of range "
                f"[0, {self.spec.blocks_per_chip})"
            )

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.spec.pages_per_block:
            raise AddressError(
                f"chip {self.chip_id}: page {page} out of range "
                f"[0, {self.spec.pages_per_block})"
            )

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def read(self, block: int, page: int, include_transfer: bool = True) -> float:
        """Read one page; returns the latency in microseconds."""
        self._check_block(block)
        self._check_page(page)
        if not self.programmed[block, page]:
            raise ReadFreePageError(
                f"chip {self.chip_id}: read of unprogrammed page "
                f"(block {block}, page {page})"
            )
        latency = self.latency.read_us(page, include_transfer=include_transfer)
        self.stats.record_read(latency)
        return latency

    def program(
        self,
        block: int,
        page: int,
        tag: Any = None,
        include_transfer: bool = True,
    ) -> float:
        """Program one page; returns the latency in microseconds.

        Raises :class:`ProgramOrderError` unless ``page`` is at or after
        the block's write pointer (ascending order; this single check
        also covers erase-before-write, since every page behind the
        pointer has already been programmed or permanently skipped for
        this erase cycle).
        """
        self._check_block(block)
        self._check_page(page)
        expected = int(self.write_ptr[block])
        if page < expected:
            raise ProgramOrderError(
                f"chip {self.chip_id}: non-ascending program of block {block}: "
                f"got page {page}, write pointer at {expected}"
            )
        self.write_ptr[block] = page + 1
        self.programmed[block, page] = True
        if tag is not None:
            self._tags.setdefault(block, {})[page] = tag
        latency = self.latency.program_us(page, include_transfer=include_transfer)
        self.stats.record_program(latency)
        return latency

    def erase(self, block: int) -> float:
        """Erase a block; returns the latency in microseconds."""
        self._check_block(block)
        self.write_ptr[block] = 0
        self.programmed[block, :] = False
        self.erase_counts[block] += 1
        self._tags.pop(block, None)
        latency = self.latency.erase_us()
        self.stats.record_erase(latency)
        self.erase_histogram.record(block)
        return latency

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------

    def is_programmed(self, block: int, page: int) -> bool:
        """Whether the page currently holds data."""
        self._check_block(block)
        self._check_page(page)
        return bool(self.programmed[block, page])

    def is_block_full(self, block: int) -> bool:
        """Whether the block has no programmable pages left this cycle."""
        self._check_block(block)
        return int(self.write_ptr[block]) == self.spec.pages_per_block

    def next_page(self, block: int) -> int:
        """Next programmable page index of the block (== pages_per_block if full)."""
        self._check_block(block)
        return int(self.write_ptr[block])

    def tag(self, block: int, page: int) -> Any:
        """Tag stored when the page was programmed (None if untagged)."""
        self._check_block(block)
        self._check_page(page)
        return self._tags.get(block, {}).get(page)

    def erase_count(self, block: int) -> int:
        """Lifetime erase count of the block."""
        self._check_block(block)
        return int(self.erase_counts[block])
