"""Tapered vertical-channel physics behind the asymmetric access speed.

Background (paper Section 2.1): vertical channels of 3D charge-trap NAND
are created by chemically eroding the gate stack.  The etchant acts
longer at the top, so the channel opening is wider at the top layer and
narrower at the bottom.  A narrower opening concentrates the electric
field around the cylindrical charge trap (the paper's ref [9], Lee et
al., "field concentration effects in arch gate SONOS"), so cells at the
bottom of the channel program and read *faster* than cells at the top.

This module turns that mechanism into numbers: a linear taper of the
channel radius across layers and a power-law mapping from the local
field-enhancement factor to an access-latency multiplier, calibrated so
the top layer is exactly ``speed_ratio`` times slower than the bottom
layer — the quantity the paper sweeps from 2x to 5x.

The result feeds :mod:`repro.nand.latency` as the ``physical`` profile.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigError


class TaperedChannelModel:
    """Latency multipliers derived from a tapered cylindrical channel.

    Parameters
    ----------
    num_layers:
        Number of gate stack layers the channel crosses.
    speed_ratio:
        Desired latency ratio between the slowest (top) and fastest
        (bottom) layer; the exponent is calibrated to hit it exactly.
    top_radius_nm / bottom_radius_nm:
        Channel opening radii at the top and bottom layers.  Typical
        BiCS/TCAT values are ~120 nm tapering to ~60 nm.
    """

    def __init__(
        self,
        num_layers: int,
        speed_ratio: float,
        top_radius_nm: float = 120.0,
        bottom_radius_nm: float = 60.0,
    ) -> None:
        if num_layers < 1:
            raise ConfigError(f"num_layers must be >= 1, got {num_layers}")
        if speed_ratio < 1.0:
            raise ConfigError(f"speed_ratio must be >= 1.0, got {speed_ratio}")
        if bottom_radius_nm <= 0 or top_radius_nm < bottom_radius_nm:
            raise ConfigError(
                "need top_radius_nm >= bottom_radius_nm > 0, got "
                f"top={top_radius_nm}, bottom={bottom_radius_nm}"
            )
        self.num_layers = num_layers
        self.speed_ratio = float(speed_ratio)
        self.top_radius_nm = float(top_radius_nm)
        self.bottom_radius_nm = float(bottom_radius_nm)
        # Calibrate the field->latency exponent so that
        # (r_top / r_bottom) ** alpha == speed_ratio.
        ratio = self.top_radius_nm / self.bottom_radius_nm
        if ratio == 1.0 or self.speed_ratio == 1.0:
            self._alpha = 0.0
        else:
            self._alpha = math.log(self.speed_ratio) / math.log(ratio)

    # ------------------------------------------------------------------

    def depth_of_layer(self, layer: int) -> float:
        """Normalized channel depth of a layer: 0.0 = top, 1.0 = bottom."""
        if not 0 <= layer < self.num_layers:
            raise ConfigError(f"layer {layer} out of range [0, {self.num_layers})")
        if self.num_layers == 1:
            return 1.0
        return layer / (self.num_layers - 1)

    def radius_nm(self, layer: int) -> float:
        """Channel opening radius at a layer (linear taper, paper Fig. 2)."""
        d = self.depth_of_layer(layer)
        return self.top_radius_nm - (self.top_radius_nm - self.bottom_radius_nm) * d

    def field_enhancement(self, layer: int) -> float:
        """Relative electric-field strength at a layer (bottom layer = max).

        For a cylindrical charge trap the field at the tunnel oxide scales
        inversely with the channel radius (Gauss's law on a cylinder), so
        the enhancement factor relative to the bottom layer is
        ``r_bottom / r(layer)``.
        """
        return self.bottom_radius_nm / self.radius_nm(layer)

    def latency_multiplier(self, layer: int) -> float:
        """Access-latency multiplier at a layer (bottom = 1.0, top = speed_ratio).

        The stronger the local field, the faster program/read completes;
        we map the radius ratio through the calibrated power law so the
        endpoints match the requested speed ratio exactly.
        """
        return (self.radius_nm(layer) / self.bottom_radius_nm) ** self._alpha

    def multipliers(self) -> np.ndarray:
        """Per-layer latency multipliers, index 0 = top (slowest)."""
        return np.array(
            [self.latency_multiplier(layer) for layer in range(self.num_layers)],
            dtype=np.float64,
        )

    def radii_nm(self) -> np.ndarray:
        """Per-layer channel radii in nanometres, index 0 = top (widest)."""
        return np.array(
            [self.radius_nm(layer) for layer in range(self.num_layers)], dtype=np.float64
        )

    def describe(self) -> str:
        """One-line summary for logs."""
        return (
            f"TaperedChannelModel(layers={self.num_layers}, "
            f"r_top={self.top_radius_nm:.0f}nm, r_bottom={self.bottom_radius_nm:.0f}nm, "
            f"speed_ratio={self.speed_ratio:.1f}x, alpha={self._alpha:.3f})"
        )
