"""Per-page asymmetric latency model.

The paper's central hardware observation: pages within one block have
different access speeds because each page index maps to a gate stack
layer, and layer depth determines the channel opening (feature process
size).  Page 0 sits at the top layer (slowest); the last page sits at
the bottom (fastest) — "the last page of one block could be much faster
than the first page" (Section 1).

Profiles
--------
``linear``
    Multiplier falls linearly from ``speed_ratio`` (top layer) to 1.0
    (bottom layer).  Default, matches the paper's 2x-5x sweeps.
``geometric``
    Multiplier is ``speed_ratio ** (1 - depth)`` — latency halves every
    fixed number of layers, a plausible alternative shape.
``physical``
    Derived from :class:`repro.nand.physics.TaperedChannelModel` — a
    linear *radius* taper pushed through the field-concentration power
    law.  Endpoints still hit ``speed_ratio`` exactly.
``uniform``
    Every page costs the *mean* of the linear profile.  This is the
    symmetric null device: PPB can gain nothing on it, which the test
    suite uses as a sanity check.

All profiles preserve the mean-preserving comparison: the conventional
FTL and PPB replay the same trace on the same asymmetric device; PPB
wins only by *placing* hot data on fast pages.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nand.physics import TaperedChannelModel
from repro.nand.spec import NandSpec

#: Public tuple of profile names, re-exported by :mod:`repro.nand`.
LATENCY_PROFILES = ("linear", "geometric", "physical", "uniform")


def _layer_multipliers(spec: NandSpec) -> np.ndarray:
    """Per-layer latency multipliers for the spec's profile (index 0 = top)."""
    layers = spec.num_layers
    ratio = spec.speed_ratio
    if layers == 1:
        depth = np.array([1.0])
    else:
        depth = np.arange(layers, dtype=np.float64) / (layers - 1)
    if spec.latency_profile == "linear":
        return ratio - (ratio - 1.0) * depth
    if spec.latency_profile == "geometric":
        return ratio ** (1.0 - depth)
    if spec.latency_profile == "physical":
        return TaperedChannelModel(layers, ratio).multipliers()
    if spec.latency_profile == "uniform":
        linear = ratio - (ratio - 1.0) * depth
        return np.full(layers, float(np.mean(linear)))
    raise ConfigError(f"unknown latency profile {spec.latency_profile!r}")


class LatencyModel:
    """Precomputed per-page-index latencies for one device spec.

    The multiplier array is indexed by the page index *within a block*
    (0 .. pages_per_block-1); pages sharing a gate stack layer share a
    multiplier.  Read and program latencies both scale with the layer's
    multiplier, since both are driven by the same field strength.
    """

    def __init__(self, spec: NandSpec) -> None:
        self.spec = spec
        per_layer = _layer_multipliers(spec)
        pages = spec.pages_per_block
        layer_of_page = np.fromiter(
            (spec.layer_of_page(p) for p in range(pages)), dtype=np.int64, count=pages
        )
        #: latency multiplier per page index inside a block (slow -> fast).
        self.multipliers: np.ndarray = per_layer[layer_of_page]
        #: array read latency (us) per page index.
        self.read_us_by_page: np.ndarray = spec.read_us * self.multipliers
        #: program latency (us) per page index.  Programs follow the
        #: layer asymmetry only to the configured degree (default: not
        #: at all; see NandSpec.program_asymmetry).
        program_multipliers = 1.0 + (self.multipliers - 1.0) * spec.program_asymmetry
        self.program_us_by_page: np.ndarray = spec.program_us * program_multipliers
        self._page_transfer_us = spec.transfer_us(spec.page_size)
        # Flat per-page-index lookup tables for the replay hot path:
        # plain Python floats, with and without the bus transfer, built
        # from exactly the sums the scalar queries used to compute (so
        # per-op results are bit-identical, minus the numpy scalar
        # boxing that dominated the old per-read cost).
        transfer = self._page_transfer_us
        #: array-read latency per page index (no transfer), plain floats.
        self.read_array_us: list[float] = [float(t) for t in self.read_us_by_page]
        #: full read latency per page index (array + transfer).
        self.read_total_us: list[float] = [
            float(t + transfer) for t in self.read_us_by_page
        ]
        self.program_array_us: list[float] = [
            float(t) for t in self.program_us_by_page
        ]
        self.program_total_us: list[float] = [
            float(t + transfer) for t in self.program_us_by_page
        ]
        #: cost of ONE ECC retry step per page index (array read + transfer).
        self.retry_step_us: list[float] = [
            float(t) + transfer for t in self.read_us_by_page
        ]

    # ------------------------------------------------------------------
    # Scalar queries (hot path: called once per simulated page op)
    # ------------------------------------------------------------------

    def read_us(self, page_index: int, include_transfer: bool = True) -> float:
        """Latency of reading one page at ``page_index`` within its block."""
        if include_transfer:
            return self.read_total_us[page_index]
        return self.read_array_us[page_index]

    def program_us(self, page_index: int, include_transfer: bool = True) -> float:
        """Latency of programming one page at ``page_index``."""
        if include_transfer:
            return self.program_total_us[page_index]
        return self.program_array_us[page_index]

    def retry_read_us(self, page_index: int, steps: int) -> float:
        """Extra latency of ``steps`` ECC read-retry attempts on a page.

        Each retry step re-senses the array with shifted read reference
        voltages and re-transfers the page for another decode attempt,
        so a step costs the page's own asymmetric array read plus one
        bus transfer — retries on fast (bottom-layer) pages are cheaper
        than on slow ones, coupling the paper's latency asymmetry into
        the reliability model of :mod:`repro.reliability`.
        """
        if steps <= 0:
            return 0.0
        return steps * self.retry_step_us[page_index]

    def erase_us(self) -> float:
        """Block erase latency (layer-independent)."""
        return self.spec.erase_us

    def transfer_us(self, nbytes: int | None = None) -> float:
        """Bus transfer time for ``nbytes`` (default one page)."""
        if nbytes is None:
            return self._page_transfer_us
        return self.spec.transfer_us(nbytes)

    # ------------------------------------------------------------------
    # Aggregate / analysis helpers
    # ------------------------------------------------------------------

    def mean_read_us(self, include_transfer: bool = True) -> float:
        """Mean array-read latency over all page positions in a block."""
        t = float(np.mean(self.read_us_by_page))
        return t + self._page_transfer_us if include_transfer else t

    def mean_program_us(self, include_transfer: bool = True) -> float:
        """Mean program latency over all page positions in a block."""
        t = float(np.mean(self.program_us_by_page))
        return t + self._page_transfer_us if include_transfer else t

    def fastest_page_read_us(self) -> float:
        """Array read latency of the fastest (bottom-layer) page."""
        return float(self.read_us_by_page.min())

    def slowest_page_read_us(self) -> float:
        """Array read latency of the slowest (top-layer) page."""
        return float(self.read_us_by_page.max())

    def speed_class(self, page_index: int, num_classes: int) -> int:
        """Which of ``num_classes`` equal-size speed groups a page falls in.

        Class 0 is the slowest group (first pages, top layers); class
        ``num_classes - 1`` is the fastest.  This is exactly how virtual
        blocks carve a physical block: with ``num_classes=2`` the paper's
        VB 2n (slow half) is class 0 and VB 2n+1 (fast half) is class 1.
        """
        if num_classes < 1:
            raise ConfigError(f"num_classes must be >= 1, got {num_classes}")
        pages = self.spec.pages_per_block
        if not 0 <= page_index < pages:
            raise ConfigError(f"page_index {page_index} out of range [0, {pages})")
        return page_index * num_classes // pages
