"""Operation counters for the NAND device model.

:class:`NandStats` accumulates both operation counts and the time spent
in each operation class.  The FTL layers keep their own host-facing
accounting; these counters describe what the *device* actually did,
which is what Fig. 18 (erased block count) reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NandStats:
    """Raw device-level counters (one instance per chip, plus aggregates)."""

    reads: int = 0
    programs: int = 0
    erases: int = 0
    read_us: float = 0.0
    program_us: float = 0.0
    erase_us: float = 0.0

    def record_read(self, latency_us: float) -> None:
        """Account one page read."""
        self.reads += 1
        self.read_us += latency_us

    def record_program(self, latency_us: float) -> None:
        """Account one page program."""
        self.programs += 1
        self.program_us += latency_us

    def record_erase(self, latency_us: float) -> None:
        """Account one block erase."""
        self.erases += 1
        self.erase_us += latency_us

    @property
    def total_us(self) -> float:
        """Total busy time across all operation classes."""
        return self.read_us + self.program_us + self.erase_us

    def merge(self, other: "NandStats") -> "NandStats":
        """Return a new stats object summing self and ``other``."""
        return NandStats(
            reads=self.reads + other.reads,
            programs=self.programs + other.programs,
            erases=self.erases + other.erases,
            read_us=self.read_us + other.read_us,
            program_us=self.program_us + other.program_us,
            erase_us=self.erase_us + other.erase_us,
        )

    def snapshot(self) -> dict[str, float]:
        """Plain-dict view for reporting."""
        return {
            "reads": self.reads,
            "programs": self.programs,
            "erases": self.erases,
            "read_us": self.read_us,
            "program_us": self.program_us,
            "erase_us": self.erase_us,
            "total_us": self.total_us,
        }


@dataclass
class EraseHistogram:
    """Per-block erase counts, used by wear-leveling analyses."""

    counts: dict[int, int] = field(default_factory=dict)

    def record(self, pbn: int) -> None:
        """Account one erase of block ``pbn``."""
        self.counts[pbn] = self.counts.get(pbn, 0) + 1

    def max_count(self) -> int:
        """Highest per-block erase count (0 when nothing erased)."""
        return max(self.counts.values(), default=0)

    def min_count(self, total_blocks: int) -> int:
        """Lowest per-block erase count, counting never-erased blocks as 0."""
        if len(self.counts) < total_blocks:
            return 0
        return min(self.counts.values(), default=0)

    def spread(self, total_blocks: int) -> int:
        """Wear spread: max - min erase count across the device."""
        return self.max_count() - self.min_count(total_blocks)
