"""3D charge-trap NAND flash device model.

This package models the storage substrate the paper evaluates on:

* :mod:`repro.nand.spec` — device geometry and timing parameters
  (Table 1 of the paper, plus scaled presets for simulation).
* :mod:`repro.nand.geometry` — flat/structured address translation.
* :mod:`repro.nand.physics` — the tapered-vertical-channel model that
  produces the asymmetric feature process size across gate stack layers.
* :mod:`repro.nand.latency` — per-page asymmetric latency profiles
  (linear / geometric / physical / uniform).
* :mod:`repro.nand.chip` — single chip command model enforcing NAND rules
  (in-order programming, erase-before-write).
* :mod:`repro.nand.device` — multi-chip device with flat page addressing.
"""

from repro.nand.spec import NandSpec, table1_spec, sim_spec, tiny_spec
from repro.nand.geometry import Geometry
from repro.nand.physics import TaperedChannelModel
from repro.nand.latency import LatencyModel, LATENCY_PROFILES
from repro.nand.chip import NandChip
from repro.nand.device import NandDevice
from repro.nand.stats import NandStats

__all__ = [
    "NandSpec",
    "table1_spec",
    "sim_spec",
    "tiny_spec",
    "Geometry",
    "TaperedChannelModel",
    "LatencyModel",
    "LATENCY_PROFILES",
    "NandChip",
    "NandDevice",
    "NandStats",
]
