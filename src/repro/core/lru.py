"""The hot area's two-level LRU tracker (paper Fig. 10a).

Hot-classified data enters the *hot list*; a read while resident
promotes the entry to the *iron-hot list* ("promote if read").  When
the iron-hot list overflows, its least-recently-used entry is demoted
back to the head of the hot list ("demote if full"); when the hot list
overflows, its LRU entry is demoted out of the hot area entirely — the
caller moves it to the cold area's frequency table ("move to cold area
if full").

The tracker holds *classifications only*.  Physical data movement is
progressive: it happens when the page is next updated or relocated by
GC, never as an extra foreground copy — that is the core of the PPB
strategy's "no added GC overhead" claim.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigError
from repro.core.hotness import HotnessLevel


class TwoLevelLRU:
    """Hot/iron-hot classification with LRU demotion cascades."""

    def __init__(self, hot_capacity: int, iron_capacity: int) -> None:
        if hot_capacity < 1 or iron_capacity < 1:
            raise ConfigError(
                f"capacities must be >= 1, got hot={hot_capacity}, iron={iron_capacity}"
            )
        self.hot_capacity = hot_capacity
        self.iron_capacity = iron_capacity
        self._hot: OrderedDict[int, None] = OrderedDict()
        self._iron: OrderedDict[int, None] = OrderedDict()
        # Counters for reports.
        self.promotions = 0
        self.demotions_to_hot = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def level_of(self, lpn: int) -> HotnessLevel | None:
        """IRON_HOT / HOT if tracked here, else None."""
        if lpn in self._iron:
            return HotnessLevel.IRON_HOT
        if lpn in self._hot:
            return HotnessLevel.HOT
        return None

    def __contains__(self, lpn: int) -> bool:
        return lpn in self._iron or lpn in self._hot

    def __len__(self) -> int:
        return len(self._iron) + len(self._hot)

    @property
    def hot_size(self) -> int:
        """Entries currently in the hot list."""
        return len(self._hot)

    @property
    def iron_size(self) -> int:
        """Entries currently in the iron-hot list."""
        return len(self._iron)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def on_write(self, lpn: int) -> list[int]:
        """A hot-classified write arrived; returns LPNs evicted to cold.

        A new chunk goes to the head of the hot list (Fig. 10a); a
        rewrite of a tracked chunk refreshes its recency in place.
        """
        return self.on_hot_write(lpn)[1]

    def on_hot_write(self, lpn: int) -> tuple[HotnessLevel, list[int]]:
        """:meth:`on_write` fused with the level query the caller needs.

        One membership check decides both the write's target level (an
        iron-hot chunk being updated stays iron-hot) and the list
        transition — the per-host-write path uses this to avoid probing
        the iron list twice.
        """
        iron = self._iron
        if lpn in iron:
            iron.move_to_end(lpn)
            return HotnessLevel.IRON_HOT, []
        hot = self._hot
        hot[lpn] = None
        hot.move_to_end(lpn)
        if len(hot) <= self.hot_capacity:
            return HotnessLevel.HOT, []
        return HotnessLevel.HOT, self._shrink_hot()

    def on_read(self, lpn: int) -> list[int]:
        """A read hit a tracked chunk; promote hot -> iron-hot.

        Returns LPNs evicted to the cold area by the demotion cascade
        (iron overflow pushes into hot, hot overflow pushes out).
        """
        if lpn in self._iron:
            self._iron.move_to_end(lpn)
            return []
        if lpn not in self._hot:
            return []
        del self._hot[lpn]
        self._iron[lpn] = None
        self.promotions += 1
        evicted: list[int] = []
        while len(self._iron) > self.iron_capacity:
            demoted, _ = self._iron.popitem(last=False)
            self._hot[demoted] = None
            self._hot.move_to_end(demoted)
            self.demotions_to_hot += 1
        evicted.extend(self._shrink_hot())
        return evicted

    def drop(self, lpn: int) -> None:
        """Remove a chunk (reclassified to cold by a later write, or trimmed)."""
        self._iron.pop(lpn, None)
        self._hot.pop(lpn, None)

    def _shrink_hot(self) -> list[int]:
        evicted: list[int] = []
        while len(self._hot) > self.hot_capacity:
            lpn, _ = self._hot.popitem(last=False)
            evicted.append(lpn)
            self.evictions += 1
        return evicted
