"""The per-area virtual block lists and the Algorithm 1 discipline.

Each area (hot, cold) runs two write streams: a *slow* stream for its
less-read level (hot / icy-cold) and a *fast* stream for its
frequently-read level (iron-hot / cold).  The streams draw pages from
virtual blocks under the constraints of the paper's Section 3.3/3.4:

* a block's slow VB must fill before its fast VB becomes allocatable
  (in-order programming);
* both VBs of a block serve the same area;
* writes are **diverted** to the sibling speed class rather than letting
  physical blocks sit half-full (Fig. 10b I/II);
* new block pairs are drawn from the free pool only under an allocation
  guard (Fig. 10b III), keeping the number of open blocks bounded.

Two disciplines are provided (``PPBConfig.allocation_discipline``):

``pipelined`` (default)
    Keeps the newest pair's slow VB *and* an older pair's fast VB open
    simultaneously, with a bounded queue of fast VBs awaiting their
    turn.  Both speed classes can therefore be served correctly at the
    same time, which is what produces the paper's measured read gains;
    diverts happen only under sustained one-sided demand (the queue
    bound plays the role of "both lists are full").
``strict``
    A literal reading of the paper's Algorithm 1: at most one VB open
    per area at a time, divert whenever the requested class has no
    space, open a new pair only when *neither* class has space.  This
    alternates slow/fast windows and loses most of the segregation —
    kept as an ablation (see DESIGN.md for the interpretation note).
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError, VirtualBlockError
from repro.core.hotness import Area
from repro.core.virtual_block import VBState, VirtualBlock, VirtualBlockManager
from repro.ftl.blockinfo import BlockManager
from repro.nand.device import NandDevice

#: Disciplines accepted by :class:`AreaAllocator`.
DISCIPLINES = ("pipelined", "strict")


class AreaAllocator:
    """Virtual-block page allocation for one area's two write streams."""

    def __init__(
        self,
        area: Area,
        device: NandDevice,
        blocks: BlockManager,
        vbmgr: VirtualBlockManager,
        discipline: str = "pipelined",
        max_pending: int = 2,
    ) -> None:
        if discipline not in DISCIPLINES:
            raise ConfigError(
                f"allocation discipline must be one of {DISCIPLINES}, got {discipline!r}"
            )
        if max_pending < 1:
            raise ConfigError(f"max_pending must be >= 1, got {max_pending}")
        self.area = area
        self.device = device
        self.blocks = blocks
        self.vbmgr = vbmgr
        self.discipline = discipline
        self.max_pending = max_pending
        #: the stream's currently-open VB, per speed class (True = fast).
        self._active: dict[bool, VirtualBlock | None] = {False: None, True: None}
        #: VBs whose predecessor filled, waiting to be opened, per class.
        self._pending: dict[bool, deque[VirtualBlock]] = {
            False: deque(),
            True: deque(),
        }
        #: physical blocks whose pairs this allocator opened and still owns.
        self.owned: set[int] = set()
        # Counters for reports.
        self.diverted_writes = 0
        self.pairs_opened = 0
        #: pages per block, hoisted for the per-write PPN arithmetic.
        self._ppb = device.spec.pages_per_block
        self._pipelined = discipline == "pipelined"
        #: direct view of the chip write pointers (single-chip devices:
        #: flat PBN == in-chip block), so the per-alloc fill checks are
        #: one list index instead of a device -> chip delegation chain.
        #: None on multi-chip devices — those fall back to next_page().
        self._write_ptr: list[int] | None = (
            device.chips[0].write_ptr if device.spec.num_chips == 1 else None
        )

    def _fill_of(self, pbn: int) -> int:
        """The block's write pointer (next programmable page index)."""
        write_ptr = self._write_ptr
        if write_ptr is not None:
            return write_ptr[pbn]
        return self.device.next_page(pbn)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def alloc_page(self, want_fast: bool) -> int:
        """Return the PPN the next write of this speed class goes to."""
        if self._pipelined:
            vb = self._alloc_pipelined(want_fast)
        else:
            vb = self._alloc_strict(want_fast)
        page = self._fill_of(vb.pbn)
        if not vb.start_page <= page < vb.end_page:
            raise VirtualBlockError(
                f"{self.area.value} area: write pointer {page} escaped {vb}"
            )
        return vb.pbn * self._ppb + page

    def _alloc_pipelined(self, want_fast: bool) -> VirtualBlock:
        """Pipelined discipline: serve both classes concurrently."""
        vb = self._usable(want_fast)
        if vb is not None:
            return vb
        if want_fast:
            # No fast VB ready: its supply comes from slow VBs filling.
            # Divert into the slow stream (speeding that supply up), or
            # open a new pair if even the slow stream is dry.
            vb = self._usable(False)
            if vb is not None:
                self.diverted_writes += 1
                return vb
            self.diverted_writes += 1
            return self._open_new_pair()
        # Slow request with no slow VB open.  Opening a new pair is the
        # natural refill, but every pair eventually yields a fast VB, so
        # under slow-heavy demand the pending-fast queue would grow
        # without bound.  The queue cap is the "both lists are full"
        # guard: at the cap, divert into the fast stream instead.
        if len(self._pending[True]) >= self.max_pending:
            vb = self._usable(True)
            if vb is not None:
                self.diverted_writes += 1
                return vb
        return self._open_new_pair()

    def _alloc_strict(self, want_fast: bool) -> VirtualBlock:
        """Literal Algorithm 1: divert first, new pair only if both dry."""
        vb = self._usable(want_fast)
        if vb is None:
            vb = self._usable(not want_fast)
            if vb is not None:
                self.diverted_writes += 1
        if vb is None:
            vb = self._open_new_pair()
            if want_fast:
                # The fresh pair starts with its slow VB: a fast-class
                # write landing there is a divert in the paper's terms.
                self.diverted_writes += 1
        return vb

    def _usable(self, is_fast: bool) -> VirtualBlock | None:
        """The class's open VB with free space, refreshing from pending."""
        active = self._active[is_fast]
        if (
            active is not None
            and active.state is VBState.ALLOCATED
            and self._fill_of(active.pbn) < active.end_page
        ):
            return active
        pending = self._pending[is_fast]
        if pending:
            vb = pending.popleft()
            vb.state = VBState.ALLOCATED
            self._active[is_fast] = vb
            return vb
        self._active[is_fast] = None
        return None

    def _open_new_pair(self) -> VirtualBlock:
        """Take a block from the free pool; its slow VB opens immediately."""
        pbn = self.blocks.allocate()
        vbs = self.vbmgr.carve(pbn, self.area)
        first = vbs[0]
        self._active[first.is_fast] = first
        self.owned.add(pbn)
        self.pairs_opened += 1
        return first

    # ------------------------------------------------------------------
    # Post-program bookkeeping
    # ------------------------------------------------------------------

    def note_programmed(self, vb: VirtualBlock) -> None:
        """Called after each program into ``vb``; handles fill transitions.

        When a VB fills: it turns USED, leaves the active slot, and its
        successor slice becomes allocatable (queued for its own speed
        class), implementing the paper's VB lifecycle (Fig. 9).
        """
        if vb.area is not self.area:
            raise VirtualBlockError(f"{vb} does not belong to the {self.area.value} area")
        if self._fill_of(vb.pbn) < vb.end_page:
            return
        vb.state = VBState.USED
        if self._active[vb.is_fast] is vb:
            self._active[vb.is_fast] = None
        successor = self.vbmgr.successor(vb)
        if successor is not None and successor.state is VBState.FREE:
            self._pending[successor.is_fast].append(successor)

    # ------------------------------------------------------------------
    # Introspection / GC support
    # ------------------------------------------------------------------

    def peek_pbn(self, is_fast: bool) -> int | None:
        """The block the class's next write would land on, side-effect-free.

        Returns None when serving the class would open a fresh pair (the
        reliability-aware placement then scores a median block).  Unlike
        :meth:`_usable`, this never pops the pending queue.
        """
        active = self._active[is_fast]
        if (
            active is not None
            and active.state is VBState.ALLOCATED
            and self._fill_of(active.pbn) < active.end_page
        ):
            return active.pbn
        pending = self._pending[is_fast]
        if pending:
            return pending[0].pbn
        return None

    def active_pbns(self) -> set[int]:
        """Blocks with an open or pending VB (excluded from GC victims)."""
        pbns = {vb.pbn for vb in self._active.values() if vb is not None}
        for queue in self._pending.values():
            pbns.update(vb.pbn for vb in queue)
        return pbns

    def has_space(self, is_fast: bool) -> bool:
        """Whether the class could absorb a write without a new pair."""
        active = self._active[is_fast]
        if (
            active is not None
            and active.state is VBState.ALLOCATED
            and self._fill_of(active.pbn) < active.end_page
        ):
            return True
        return bool(self._pending[is_fast])

    def open_block_count(self) -> int:
        """Blocks this area holds outside FREE/FULL (diagnostics)."""
        return len(self.active_pbns())

    def forget_block(self, pbn: int) -> None:
        """A block of this area was erased; drop any stale references.

        GC victims are always FULL blocks, whose VBs are all USED, so
        finding one in an active slot or pending queue is a bug.
        """
        for is_fast, active in self._active.items():
            if active is not None and active.pbn == pbn:
                raise VirtualBlockError(
                    f"erased block {pbn} was the {self.area.value} area's "
                    f"active {'fast' if is_fast else 'slow'} VB"
                )
        for queue in self._pending.values():
            for vb in queue:
                if vb.pbn == pbn:
                    raise VirtualBlockError(
                        f"erased block {pbn} had a pending VB {vb}"
                    )
        self.owned.discard(pbn)
