"""The four data hotness levels and their placement semantics.

Section 3.2 of the paper refines the classic hot/cold split into four
levels by *read* re-access frequency:

=========  =========================  =====================  ==========
Level      Behaviour                  Example                Placement
=========  =========================  =====================  ==========
IRON_HOT   frequently read + written  file-system metadata   hot block, fast pages
HOT        frequently written         temp/cache files       hot block, slow pages
COLD       write-once-read-many       videos, pictures       cold block, fast pages
ICY_COLD   write-once-read-few        backups                cold block, slow pages
=========  =========================  =====================  ==========

Hot and iron-hot data share *hot blocks*; cold and icy-cold data share
*cold blocks* — never mixed, so GC always finds blocks that are either
mostly-invalid (hot) or mostly-valid (cold), preserving its efficiency.
Within a block, the frequently-*read* level of each area (iron-hot,
cold) gets the fast pages.
"""

from __future__ import annotations

import enum


class Area(enum.Enum):
    """Which block population a piece of data belongs to."""

    HOT = "hot"
    COLD = "cold"


class HotnessLevel(enum.IntEnum):
    """The paper's four-level classification, ordered coldest first."""

    ICY_COLD = 0
    COLD = 1
    HOT = 2
    IRON_HOT = 3

    @property
    def area(self) -> Area:
        """Hot blocks host HOT/IRON_HOT; cold blocks host COLD/ICY_COLD."""
        return _AREA_OF[self]

    @property
    def wants_fast_pages(self) -> bool:
        """Frequently-read levels earn the fast (bottom-layer) pages.

        Iron-hot data is read constantly; cold data is write-once but
        *read-many*.  Hot (write-mostly) and icy-cold (read-few) data
        can live on slow pages without hurting anything.
        """
        return _WANTS_FAST[self]

    @property
    def label(self) -> str:
        """Human-readable name used in reports."""
        return _LABEL_OF[self]


# Per-call lookup tables for the properties above: classification runs
# once per host write, so the properties must not rebuild containers.
_AREA_OF = {
    HotnessLevel.ICY_COLD: Area.COLD,
    HotnessLevel.COLD: Area.COLD,
    HotnessLevel.HOT: Area.HOT,
    HotnessLevel.IRON_HOT: Area.HOT,
}
_WANTS_FAST = {
    HotnessLevel.ICY_COLD: False,
    HotnessLevel.COLD: True,
    HotnessLevel.HOT: False,
    HotnessLevel.IRON_HOT: True,
}
_LABEL_OF = {
    HotnessLevel.ICY_COLD: "icy-cold",
    HotnessLevel.COLD: "cold",
    HotnessLevel.HOT: "hot",
    HotnessLevel.IRON_HOT: "iron-hot",
}


def fast_level_of(area: Area) -> HotnessLevel:
    """The level an area serves from its fast pages."""
    return HotnessLevel.IRON_HOT if area is Area.HOT else HotnessLevel.COLD


def slow_level_of(area: Area) -> HotnessLevel:
    """The level an area serves from its slow pages."""
    return HotnessLevel.HOT if area is Area.HOT else HotnessLevel.ICY_COLD
