"""Virtual blocks: speed-homogeneous slices of a physical block.

Section 3.3 of the paper: a physical block spans all gate stack layers,
so its pages range from slow (top) to fast (bottom).  Virtual block
(VB) *2n* groups the slow first half of block *n*'s pages and VB *2n+1*
the fast second half (generalized here to a configurable ``split``).

Two hardware-imposed lifecycle rules (paper Figs. 8/9):

* pages program in ascending order, so VB *i+1* of a block becomes
  allocatable only after VB *i* is fully used;
* both VBs of a block must serve the *same* area (hot or cold), so GC
  never meets a block mixing hot and cold data.

:class:`VirtualBlockManager` carves blocks lazily when an area opens
them and enforces both rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import VirtualBlockError
from repro.core.hotness import Area
from repro.nand.spec import NandSpec


class VBState(enum.Enum):
    """Lifecycle of a virtual block (paper Fig. 9)."""

    FREE = "free"            # carved but not yet allocatable / not reached
    ALLOCATED = "allocated"  # open in an area's VB list, accepting writes
    USED = "used"            # every page programmed; awaiting block GC


@dataclass
class VirtualBlock:
    """One speed-homogeneous slice of a physical block."""

    vbn: int
    pbn: int
    index: int          # 0 = slowest slice ... split-1 = fastest
    split: int          # total slices per physical block
    start_page: int     # first page index (inclusive)
    end_page: int       # one past the last page index
    area: Area
    state: VBState = field(default=VBState.FREE)

    @property
    def num_pages(self) -> int:
        """Pages in this virtual block."""
        return self.end_page - self.start_page

    @property
    def is_fast(self) -> bool:
        """Whether this slice serves the area's frequently-read level.

        The later slices hold the bottom-layer (fast) pages; with the
        paper's split of two, slice 1 is the fast half.
        """
        return self.index >= (self.split + 1) // 2

    def contains_page(self, page: int) -> bool:
        """Whether a page index inside the block falls in this slice."""
        return self.start_page <= page < self.end_page

    def __repr__(self) -> str:
        return (
            f"VB({self.vbn}: pbn={self.pbn}[{self.start_page}:{self.end_page}], "
            f"{'fast' if self.is_fast else 'slow'}, {self.area.value}, "
            f"{self.state.value})"
        )


class VirtualBlockManager:
    """Carves physical blocks into virtual blocks and tracks their state."""

    def __init__(self, spec: NandSpec, split: int = 2) -> None:
        if split < 2:
            raise VirtualBlockError(f"split must be >= 2, got {split}")
        if split > spec.pages_per_block:
            raise VirtualBlockError(
                f"split {split} exceeds pages per block {spec.pages_per_block}"
            )
        self.spec = spec
        self.split = split
        pages = spec.pages_per_block
        #: page-index boundaries of the slices (length split+1).
        self.boundaries = [i * pages // split for i in range(split)] + [pages]
        self._carved: dict[int, list[VirtualBlock]] = {}

    # ------------------------------------------------------------------

    def carve(self, pbn: int, area: Area) -> list[VirtualBlock]:
        """Split a freshly-allocated block into VBs for one area.

        The slowest VB starts ALLOCATED (it must be written first); the
        rest stay FREE until their predecessor is used.
        """
        if pbn in self._carved:
            raise VirtualBlockError(f"block {pbn} is already carved")
        vbs = [
            VirtualBlock(
                vbn=pbn * self.split + i,
                pbn=pbn,
                index=i,
                split=self.split,
                start_page=self.boundaries[i],
                end_page=self.boundaries[i + 1],
                area=area,
            )
            for i in range(self.split)
        ]
        vbs[0].state = VBState.ALLOCATED
        self._carved[pbn] = vbs
        return vbs

    def release(self, pbn: int) -> None:
        """Forget a block's carving after erase (all VBs must be USED)."""
        vbs = self._carved.pop(pbn, None)
        if vbs is None:
            return
        for vb in vbs:
            if vb.state is VBState.ALLOCATED:
                raise VirtualBlockError(
                    f"releasing block {pbn} while {vb} is still allocated"
                )

    # ------------------------------------------------------------------

    def is_carved(self, pbn: int) -> bool:
        """Whether the block currently belongs to an area."""
        return pbn in self._carved

    def vbs_of(self, pbn: int) -> list[VirtualBlock]:
        """The block's virtual blocks (raises if not carved)."""
        try:
            return self._carved[pbn]
        except KeyError:
            raise VirtualBlockError(f"block {pbn} is not carved") from None

    def slices_of(self, pbn: int) -> list[VirtualBlock] | None:
        """The block's VBs in ascending page order, or None if not carved.

        Non-raising twin of :meth:`vbs_of` for per-program hot paths:
        the returned list is exactly the carve order, so the slice
        holding page ``p`` is the first one with ``p < end_page``.
        """
        return self._carved.get(pbn)

    def vb_of_page(self, pbn: int, page: int) -> VirtualBlock:
        """The VB containing a given page index of a carved block."""
        for vb in self.vbs_of(pbn):
            if vb.contains_page(page):
                return vb
        raise VirtualBlockError(f"page {page} outside block {pbn}'s slices")

    def area_of(self, pbn: int) -> Area | None:
        """The area a carved block serves, or None if not carved."""
        vbs = self._carved.get(pbn)
        return vbs[0].area if vbs else None

    def successor(self, vb: VirtualBlock) -> VirtualBlock | None:
        """The next slice of the same block, or None for the last one."""
        vbs = self.vbs_of(vb.pbn)
        if vb.index + 1 < len(vbs):
            return vbs[vb.index + 1]
        return None

    def carved_count(self) -> int:
        """Number of blocks currently carved (diagnostics)."""
        return len(self._carved)
