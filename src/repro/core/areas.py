"""Hot and cold area managers: trackers + classification flow.

The areas own the paper's second-stage refinement (Figs. 10/11):

* the **hot area** runs the two-level LRU — hot writes enter the hot
  list, reads promote to iron-hot, overflow demotes toward the cold
  area;
* the **cold area** runs the access-frequency table — cold writes
  register as icy-cold, reads promote to cold, aging and eviction
  demote back.

The areas decide *levels*; the :class:`~repro.core.vblists.AreaAllocator`
decides *pages*.  Keeping them separate mirrors the paper's split
between identification (Section 3.2/3.4) and allocation (Section 3.3).
"""

from __future__ import annotations

from repro.core.config import PPBConfig
from repro.core.freqtable import AccessFrequencyTable
from repro.core.hotness import HotnessLevel
from repro.core.lru import TwoLevelLRU


class HotArea:
    """Hot/iron-hot classification via the two-level LRU."""

    def __init__(self, config: PPBConfig, num_lpns: int) -> None:
        self.lru = TwoLevelLRU(
            hot_capacity=config.hot_list_capacity(num_lpns),
            iron_capacity=config.iron_list_capacity(num_lpns),
        )

    def level_of(self, lpn: int) -> HotnessLevel | None:
        """IRON_HOT / HOT when tracked, else None."""
        return self.lru.level_of(lpn)

    def on_write(self, lpn: int) -> tuple[HotnessLevel, list[int]]:
        """A hot-classified write: returns (target level, LPNs demoted to cold).

        An update of an iron-hot chunk stays iron-hot (it keeps earning
        fast pages); anything else (re)enters the hot list.
        """
        return self.lru.on_hot_write(lpn)

    def on_read(self, lpn: int) -> list[int]:
        """A read of a tracked chunk: promote, return demotion cascade."""
        return self.lru.on_read(lpn)

    def drop(self, lpn: int) -> None:
        """Stop tracking (chunk reclassified cold or trimmed)."""
        self.lru.drop(lpn)

    def __contains__(self, lpn: int) -> bool:
        return lpn in self.lru


class ColdArea:
    """Cold/icy-cold classification via the access-frequency table."""

    def __init__(self, config: PPBConfig, num_lpns: int) -> None:
        self.table = AccessFrequencyTable(
            capacity=config.freq_table_capacity(num_lpns),
            promote_reads=config.cold_promote_reads,
            aging_period=config.freq_aging_period,
        )

    def level_of(self, lpn: int) -> HotnessLevel:
        """COLD once read enough, ICY_COLD otherwise."""
        return self.table.level_of(lpn)

    def on_write(self, lpn: int) -> HotnessLevel:
        """A cold-classified write registers as fresh icy-cold data.

        Updated cold data is demoted (it is no longer write-once,
        Fig. 11b), so the count resets and placement targets the
        icy-cold (slow) virtual blocks.
        """
        self.table.on_write(lpn)
        return HotnessLevel.ICY_COLD

    def on_read(self, lpn: int) -> bool:
        """Log a read; True if it promoted the chunk icy -> cold."""
        return self.table.on_read(lpn)

    def adopt_demoted(self, lpn: int) -> None:
        """Take over a chunk evicted from the hot area (Fig. 6)."""
        self.table.on_write(lpn)

    def drop(self, lpn: int) -> None:
        """Stop tracking (chunk reclassified hot or trimmed)."""
        self.table.drop(lpn)

    def __contains__(self, lpn: int) -> bool:
        return lpn in self.table
