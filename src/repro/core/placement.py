"""Reliability-aware placement: price fast pages' error risk.

The paper's asymmetric-channel insight cuts both ways.  Bottom layers
are *fast* because the tapered channel concentrates the electric field
— and the same field stress makes them the most *error-prone* layers
(see :mod:`repro.reliability.variation`).  Pure-speed PPB therefore
concentrates the most frequently *read* data exactly where retention
and read-disturb will hurt it most, and every host read of that data
later pays ECC retry steps while the refresh engine burns erases
relocating it.  Luo et al. (arXiv:1807.05140) show that placement which
respects process variation recovers most of the lost lifetime.

:class:`ReliabilityAwarePlacement` makes that trade-off explicit.  For
a write that *wants* fast pages (iron-hot or cold data), it scores the
two speed classes:

* **speed gain** — the mean per-read array-latency advantage of the
  fast class over the slow class (what the paper's PPB chases);
* **reliability cost** — the difference in predicted per-read retry
  latency between the classes at a configurable *horizon*: each class's
  mean spatial RBER multiplier on the candidate open block, wear-scaled
  by the block's P/E count, aged/disturbed to the horizon, pushed
  through the ECC model and priced at the class's own read latency.

The horizon is *per data class*, because the two kinds of read-hot data
rot differently: **iron-hot** data is rewritten all the time (retention
age stays near zero) but its blocks absorb reads, so its risk is
read-disturb at ``horizon_reads``; **cold** data is written once and
then sits, so its risk is retention at ``horizon_s`` with essentially
no disturb.  Collapsing both into one combined horizon saturates the
ECC model (every class needs max retries, and then fast pages' cheaper
retries always win), which would blind the policy exactly where it
matters.

The write goes to the fast class iff

    speed_gain >= weight * (risk_fast - risk_slow)

``weight`` is the utility knob (``PPBConfig.reliability_weight``).  At
0 the decision degrades to pure-speed PPB *exactly* — the right side is
zero and the left side is nonnegative — which the property tests assert
byte-for-byte.  Because the risk term includes the candidate block's
own lognormal process-variation multiplier and wear, the decision is
per-block dynamic: hot data still claims fast pages on good blocks and
diverts to slow pages on blocks whose fast half is predicted to rot.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nand.latency import LatencyModel
from repro.reliability.manager import ReliabilityManager


class ReliabilityAwarePlacement:
    """Scores speed classes by speed *and* predicted RBER-at-horizon."""

    def __init__(
        self,
        manager: ReliabilityManager,
        latency: LatencyModel,
        vb_split: int = 2,
        weight: float = 1.0,
        horizon_s: float = 7 * 86400.0,
        horizon_reads: int = 0,
    ) -> None:
        if weight < 0:
            raise ConfigError(f"weight must be >= 0, got {weight}")
        if horizon_s < 0:
            raise ConfigError(f"horizon_s must be >= 0, got {horizon_s}")
        if horizon_reads < 0:
            raise ConfigError(f"horizon_reads must be >= 0, got {horizon_reads}")
        self.manager = manager
        self.latency = latency
        self.weight = float(weight)
        self.horizon_s = float(horizon_s)
        self.horizon_reads = int(horizon_reads)
        spec = manager.spec
        pages = spec.pages_per_block
        # The fast classes are the VB slices with index >= (split+1)//2
        # (see repro.core.virtual_block.VirtualBlock.is_fast); everything
        # below that boundary is the slow half of the binary decision.
        boundary = (vb_split + 1) // 2 * pages // vb_split
        slow = np.arange(0, boundary)
        fast = np.arange(boundary, pages)
        #: mean array-read latency (us) per speed class.
        self._mean_read_us = {
            False: float(latency.read_us_by_page[slow].mean()),
            True: float(latency.read_us_by_page[fast].mean()),
        }
        #: mean layer RBER multiplier per speed class.
        self._mean_var_mult = {
            False: float(manager.variation.page_multipliers[slow].mean()),
            True: float(manager.variation.page_multipliers[fast].mean()),
        }
        #: representative page index per class (middle of the class),
        #: used to price retry steps with the class's own latency.
        self._rep_page = {
            False: int(slow[len(slow) // 2]),
            True: int(fast[len(fast) // 2]),
        }
        #: decisions taken (diagnostics).
        self.fast_choices = 0
        self.slow_diverts = 0

    # ------------------------------------------------------------------

    def prefer_fast(
        self,
        fast_pbn: int | None = None,
        slow_pbn: int | None = None,
        hot: bool = False,
    ) -> bool:
        """Whether read-hot data should claim the fast class right now.

        ``fast_pbn``/``slow_pbn`` are the physical blocks the next write
        of each class would land on (None = a fresh, median block).
        ``hot`` selects the prediction horizon: True for iron-hot data
        (near-zero retention age, ``horizon_reads`` of disturb), False
        for cold data (``horizon_s`` of retention, negligible disturb).
        """
        if hot:
            age_s, reads = 0.0, self.horizon_reads
        else:
            age_s, reads = self.horizon_s, 0
        speed_gain = self._mean_read_us[False] - self._mean_read_us[True]
        risk = self.weight * (
            self._risk_us(True, fast_pbn, age_s, reads)
            - self._risk_us(False, slow_pbn, age_s, reads)
        )
        if speed_gain >= risk:
            self.fast_choices += 1
            return True
        self.slow_diverts += 1
        return False

    def _risk_us(
        self, is_fast: bool, pbn: int | None, age_s: float, reads: int
    ) -> float:
        """Predicted per-read retry latency (us) of a class at horizon."""
        manager = self.manager
        if pbn is not None:
            block_mult = float(manager.variation.block_multipliers[pbn])
            pe = manager.pe_cycles_of(pbn)
        else:
            block_mult = 1.0
            pe = 0
        rber = (
            manager.config.base_rber
            * block_mult
            * self._mean_var_mult[is_fast]
            * manager.retention.combined_factor(age_s, pe)
        )
        if reads:
            rber *= manager.disturb.factor(reads)
        steps, uncorrectable = manager.ecc.retries_needed(rber)
        extra = self.latency.retry_read_us(self._rep_page[is_fast], steps)
        if uncorrectable:
            extra += manager.config.uncorrectable_penalty_us
        return extra

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        return (
            f"ReliabilityAwarePlacement(weight={self.weight:.2f}, "
            f"horizon={self.horizon_s / 86400.0:.1f}d, "
            f"horizon_reads={self.horizon_reads}, "
            f"gain={self._mean_read_us[False] - self._mean_read_us[True]:.1f}us)"
        )
