"""The cold area's access-frequency table (paper Fig. 11a).

Each cold-classified chunk gets an entry logging its read re-access
count.  Chunks read at least ``promote_reads`` times classify as COLD
(write-once-read-many — they earn fast pages at their next relocation);
the rest stay ICY_COLD.  The paper keeps the table sorted by frequency;
a threshold on the count is the O(1) equivalent and is what we do.

Two pressure valves keep the table honest:

* **capacity eviction** — when full, the entry with the lowest count is
  dropped (its data degrades to icy-cold by default);
* **aging** — counts are halved every ``aging_period`` recorded events,
  so data that stops being read drifts back toward icy-cold ("demote if
  not modified"/"demote if full", Fig. 6).
"""

from __future__ import annotations

import heapq
from operator import itemgetter

from repro.errors import ConfigError
from repro.core.hotness import HotnessLevel


class AccessFrequencyTable:
    """Bounded LPN -> read-count table with threshold classification."""

    def __init__(
        self,
        capacity: int,
        promote_reads: int = 1,
        aging_period: int = 100_000,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        if promote_reads < 1:
            raise ConfigError(f"promote_reads must be >= 1, got {promote_reads}")
        self.capacity = capacity
        self.promote_reads = promote_reads
        self.aging_period = aging_period
        self._counts: dict[int, int] = {}
        self._events_since_aging = 0
        # Counters for reports.
        self.promotions = 0
        self.evictions = 0
        self.agings = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def level_of(self, lpn: int) -> HotnessLevel:
        """COLD once read enough, ICY_COLD otherwise (including untracked)."""
        if self._counts.get(lpn, 0) >= self.promote_reads:
            return HotnessLevel.COLD
        return HotnessLevel.ICY_COLD

    def count_of(self, lpn: int) -> int:
        """Current logged read count (0 if untracked)."""
        return self._counts.get(lpn, 0)

    def __contains__(self, lpn: int) -> bool:
        return lpn in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def on_write(self, lpn: int) -> None:
        """A cold-classified write arrived: (re)register with zero reads.

        Fresh cold data starts icy-cold; only subsequent reads promote
        it (the paper stores new cold data in the icy-cold area first).
        """
        counts = self._counts
        counts[lpn] = 0
        if len(counts) > self.capacity:
            self._enforce_capacity()
        if self.aging_period:
            self._events_since_aging += 1
            if self._events_since_aging >= self.aging_period:
                self._age()

    def on_read(self, lpn: int) -> bool:
        """Log one read; returns True if this read promoted icy -> cold."""
        counts = self._counts
        count = counts.get(lpn, 0) + 1
        counts[lpn] = count
        promoted = count == self.promote_reads
        if promoted:
            self.promotions += 1
        if len(counts) > self.capacity:
            self._enforce_capacity()
        if self.aging_period:
            self._events_since_aging += 1
            if self._events_since_aging >= self.aging_period:
                self._age()
        return promoted

    def drop(self, lpn: int) -> None:
        """Remove a chunk (reclassified hot, or trimmed)."""
        self._counts.pop(lpn, None)

    # ------------------------------------------------------------------
    # Pressure valves
    # ------------------------------------------------------------------

    def _enforce_capacity(self) -> None:
        # Evict in batches: one O(n) scan drops the ~1.5% lowest-count
        # entries, amortizing to O(1) per insert (a strict per-insert
        # min() scan is quadratic over a long trace).
        counts = self._counts
        if len(counts) <= self.capacity:
            return
        batch = max(1, self.capacity // 64, len(counts) - self.capacity)
        # itemgetter is C-implemented; a python lambda here costs one
        # interpreter call per table entry per eviction scan.
        victims = heapq.nsmallest(batch, counts.items(), key=itemgetter(1))
        for lpn, _ in victims:
            del counts[lpn]
        self.evictions += len(victims)

    def _age(self) -> None:
        """Halve every count (the callers gate on the aging period)."""
        self._counts = {lpn: c >> 1 for lpn, c in self._counts.items()}
        self._events_since_aging = 0
        self.agings += 1
