"""The paper's contribution: the Progressive Performance Boosting strategy.

PPB exploits the asymmetric page access speed of 3D charge-trap NAND by
placing data of four hotness levels on pages of matching speed, without
hurting garbage collection:

* :mod:`repro.core.hotness` — the four levels (iron-hot / hot / cold /
  icy-cold) and their mapping to areas and speed classes.
* :mod:`repro.core.identification` — pluggable first-stage hot/cold
  identifiers (the paper's size-check case study plus two alternatives).
* :mod:`repro.core.lru` — the hot area's two-level LRU tracker.
* :mod:`repro.core.freqtable` — the cold area's access-frequency table.
* :mod:`repro.core.virtual_block` — virtual blocks carved from physical
  blocks by page speed, with the paper's lifecycle constraints.
* :mod:`repro.core.vblists` — the five VB lists and the Algorithm 1
  allocation discipline (divert on one-side-full, new pair only when
  both sides are full).
* :mod:`repro.core.areas` — hot/cold area managers tying trackers to
  placement decisions.
* :mod:`repro.core.placement` — the reliability-aware placement policy
  that prices fast pages' predicted RBER-at-horizon against their speed
  gain (``PPBConfig.reliability_weight``).
* :mod:`repro.core.ppb_ftl` — :class:`PPBFTL`, the full strategy on top
  of the shared FTL machinery.
"""

from repro.core.config import PPBConfig
from repro.core.placement import ReliabilityAwarePlacement
from repro.core.hotness import Area, HotnessLevel
from repro.core.identification import (
    FirstStageIdentifier,
    MultiHashIdentifier,
    SizeCheckIdentifier,
    TwoLevelLruIdentifier,
    make_identifier,
)
from repro.core.lru import TwoLevelLRU
from repro.core.freqtable import AccessFrequencyTable
from repro.core.virtual_block import VBState, VirtualBlock, VirtualBlockManager
from repro.core.vblists import AreaAllocator
from repro.core.areas import ColdArea, HotArea
from repro.core.ppb_ftl import PPBFTL

__all__ = [
    "PPBConfig",
    "Area",
    "HotnessLevel",
    "FirstStageIdentifier",
    "SizeCheckIdentifier",
    "TwoLevelLruIdentifier",
    "MultiHashIdentifier",
    "make_identifier",
    "TwoLevelLRU",
    "AccessFrequencyTable",
    "VBState",
    "VirtualBlock",
    "VirtualBlockManager",
    "AreaAllocator",
    "HotArea",
    "ColdArea",
    "ReliabilityAwarePlacement",
    "PPBFTL",
]
