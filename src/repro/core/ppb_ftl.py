"""PPBFTL: the Progressive Performance Boosting strategy as an FTL.

Puts the pieces together on top of the shared FTL machinery
(:class:`~repro.ftl.base.BaseFTL`):

* every host write is classified — first stage by a pluggable
  identifier (size check by default), second stage by the hot area's
  two-level LRU or the cold area's frequency table — and placed into a
  virtual block of the matching area + speed class via Algorithm 1;
* every host read updates the trackers (promotions are logical only);
* garbage collection relocates each live page according to its
  *current* classification, which is where the progressive migration
  to speed-appropriate pages actually happens — PPB never spends an
  extra foreground copy on movement;
* the GC driver, victim policy and accounting are inherited unchanged
  from the baseline, which is what makes the paper's "no added GC
  overhead" comparison meaningful.

On multi-chip devices virtual blocks inherit the chip-striped free pool
(consecutive VB allocations rotate chips), and the service path is
chip-attributed through the :class:`~repro.nand.device.NandDevice` op
log — including ECC retry penalties — so the timed replay mode can
overlay chip/channel concurrency onto PPB requests exactly as it does
for the baselines.  Single-chip behaviour is unchanged, byte for byte.
"""

from __future__ import annotations

from collections import deque

from repro.core.areas import ColdArea, HotArea
from repro.core.config import PPBConfig
from repro.core.hotness import Area, HotnessLevel
from repro.core.identification import (
    FirstStageIdentifier,
    SizeCheckIdentifier,
    make_identifier,
)
from repro.core.placement import ReliabilityAwarePlacement
from repro.core.vblists import AreaAllocator
from repro.core.virtual_block import VirtualBlockManager
from repro.errors import VirtualBlockError
from repro.ftl.base import BaseFTL, WriteContext
from repro.ftl.gc import VictimPolicy
from repro.nand.device import NandDevice


class PPBFTL(BaseFTL):
    """Page-mapping FTL with the PPB placement strategy."""

    name = "ppb"

    def __init__(
        self,
        device: NandDevice,
        config: PPBConfig | None = None,
        identifier: FirstStageIdentifier | None = None,
        victim_policy: VictimPolicy | None = None,
        gc_low_blocks: int | None = None,
        gc_high_blocks: int | None = None,
        reliability=None,
        refresh=None,
    ) -> None:
        if gc_low_blocks is None:
            # PPB keeps up to four open blocks (two areas x two speed
            # classes), so it needs a slightly deeper free reserve than
            # the baseline's two.
            gc_low_blocks = max(5, device.spec.total_blocks // 64)
        super().__init__(
            device,
            victim_policy,
            gc_low_blocks,
            gc_high_blocks,
            reliability=reliability,
            refresh=refresh,
        )
        self.config = config or PPBConfig()
        self.identifier = identifier or make_identifier(
            self.config.identifier, self.spec.page_size
        )
        self.vbmgr = VirtualBlockManager(self.spec, self.config.vb_split)
        self.hot_area = HotArea(self.config, self.num_lpns)
        self.cold_area = ColdArea(self.config, self.num_lpns)
        self.allocators: dict[Area, AreaAllocator] = {
            area: AreaAllocator(
                area,
                device,
                self.blocks,
                self.vbmgr,
                discipline=self.config.allocation_discipline,
                max_pending=self.config.max_pending_vbs,
            )
            for area in (Area.HOT, Area.COLD)
        }
        #: optional dedicated stream consolidating GC-relocated icy data
        #: (cold area, lifetime-separated from fresh icy host writes).
        self.gc_icy_allocator: AreaAllocator | None = None
        if self.config.separate_gc_icy:
            self.gc_icy_allocator = AreaAllocator(
                Area.COLD,
                device,
                self.blocks,
                self.vbmgr,
                discipline=self.config.allocation_discipline,
                max_pending=1,
            )
        #: promoted pages awaiting migration to fast pages at next GC.
        self._migration_queue: deque[int] = deque()
        # Hot-path lookup tables: placement runs per host write and the
        # tracker hooks per host read/GC copy, so the level -> allocator
        # and level -> counter-key resolutions must be dict hits, not
        # enum property walks and f-string builds.
        self._allocator_by_level = {
            level: self.allocators[level.area] for level in HotnessLevel
        }
        self._wants_fast_by_level = {
            level: level.wants_fast_pages for level in HotnessLevel
        }
        self._host_place_key = {
            level: f"ppb.host_place.{level.label}" for level in HotnessLevel
        }
        self._gc_place_key = {
            level: f"ppb.gc_place.{level.label}" for level in HotnessLevel
        }
        self._fast_half_start = self.spec.pages_per_block // 2
        self._allocator_tuple = tuple(self._all_allocators())
        # Direct tracker references: the area objects are thin wrappers,
        # and the per-op paths below go straight to the LRU / frequency
        # table to skip a delegation layer per event.
        self._lru = self.hot_area.lru
        self._freq = self.cold_area.table
        #: page-size threshold of the paper's size-check identifier,
        #: inlined in _classify_write; None for custom identifiers.
        self._size_check_threshold = (
            self.identifier.page_size
            if type(self.identifier) is SizeCheckIdentifier
            else None
        )
        #: optional reliability-aware placement scorer (needs a manager
        #: and a nonzero weight; None = the paper's pure-speed PPB).
        self.placement: ReliabilityAwarePlacement | None = None
        if reliability is not None and self.config.reliability_weight > 0:
            self.placement = ReliabilityAwarePlacement(
                reliability,
                device.latency,
                vb_split=self.config.vb_split,
                weight=self.config.reliability_weight,
                horizon_s=self.config.placement_horizon_s,
                horizon_reads=self.config.placement_horizon_reads,
            )

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def current_level(self, lpn: int) -> HotnessLevel:
        """The chunk's present classification (GC relocation target)."""
        level = self._lru.level_of(lpn)
        if level is not None:
            return level
        return self._freq.level_of(lpn)

    def _classify_write(self, lpn: int, nbytes: int) -> HotnessLevel:
        """Run both identification stages for a host write."""
        threshold = self._size_check_threshold
        if threshold is not None:
            hot = nbytes < threshold
        else:
            hot = self.identifier.is_hot_write(lpn, nbytes)
        if hot:
            self._freq.drop(lpn)
            level, evicted = self._lru.on_hot_write(lpn)
            for demoted in evicted:
                self._freq.on_write(demoted)  # cold area adopts it
                self.stats.bump("ppb.demoted_to_cold")
            return level
        self._lru.drop(lpn)
        self._freq.on_write(lpn)
        return HotnessLevel.ICY_COLD

    # ------------------------------------------------------------------
    # BaseFTL contract: placement
    # ------------------------------------------------------------------

    def _alloc_ppn(self, lpn: int, ctx: WriteContext) -> int:
        if ctx.is_gc:
            level = self.current_level(lpn)
            key = self._gc_place_key[level]
            if (
                level is HotnessLevel.ICY_COLD
                and self.gc_icy_allocator is not None
            ):
                self.stats.bump(key)
                return self.gc_icy_allocator.alloc_page(False)
        else:
            level = self._classify_write(lpn, ctx.nbytes)
            key = self._host_place_key[level]
        # Inlined stats.bump (once per host write and per GC copy).
        extra = self.stats.extra
        extra[key] = extra.get(key, 0.0) + 1.0
        allocator = self._allocator_by_level[level]
        return allocator.alloc_page(self._wants_fast(level, allocator))

    def _wants_fast(self, level: HotnessLevel, allocator: AreaAllocator) -> bool:
        """The level's speed class, after the reliability-aware veto.

        Pure-speed PPB (no placement policy, or ``reliability_weight``
        0) is exactly ``level.wants_fast_pages``.  With a policy, a
        fast-wanting write may be diverted to the slow class when the
        candidate fast block's predicted RBER-at-horizon outweighs its
        speed gain.
        """
        if not self._wants_fast_by_level[level]:
            return False
        if self.placement is None:
            return True
        if self.placement.prefer_fast(
            allocator.peek_pbn(True),
            allocator.peek_pbn(False),
            hot=level.area is Area.HOT,
        ):
            return True
        self.stats.bump("ppb.reliability_diverts")
        return False

    def _all_allocators(self) -> list[AreaAllocator]:
        allocators = list(self.allocators.values())
        if self.gc_icy_allocator is not None:
            allocators.append(self.gc_icy_allocator)
        return allocators

    def _owner_of(self, pbn: int) -> AreaAllocator:
        """The allocator whose pair the block belongs to."""
        for allocator in self._allocator_tuple:
            if pbn in allocator.owned:
                return allocator
        area = self.vbmgr.area_of(pbn)
        if area is not None:
            return self.allocators[area]
        raise VirtualBlockError(f"block {pbn} is not owned by any allocator")

    def _active_blocks(self) -> set[int]:
        active: set[int] = set()
        for allocator in self._all_allocators():
            active |= allocator.active_pbns()
        return active

    def _relocation_order(self, live_ppns: list[int]) -> list[int]:
        """Relocate frequently-read data first (it wants the fast pages).

        Within one victim, iron-hot and cold pages get first claim on
        the fast VB space; hot and icy-cold copies follow and absorb
        whatever class has room (Algorithm 1's diverts).
        """
        return sorted(
            live_ppns,
            key=lambda ppn: not self.current_level(
                self.map.lpn_of(ppn)
            ).wants_fast_pages,
        )

    # ------------------------------------------------------------------
    # BaseFTL hooks: tracker maintenance + VB lifecycle
    # ------------------------------------------------------------------

    def _after_program(self, ppn: int) -> None:
        # ppn was just programmed, so the device already bounds-checked
        # it.  A program only matters to the VB lifecycle when it fills
        # its slice (about one in vb-size programs), so resolve the
        # slice inline and bail out early via the write pointer before
        # paying for the owner lookup + note_programmed transition.
        pbn, page = divmod(ppn, self._ppb)
        vbs = self.vbmgr.slices_of(pbn)
        if vbs is None:
            self.vbmgr.vb_of_page(pbn, page)  # raises the proper error
            return
        for vb in vbs:
            if page < vb.end_page:
                break
        write_ptr = self._write_ptr
        fill = write_ptr[pbn] if write_ptr is not None else self.device.next_page(pbn)
        if fill < vb.end_page:
            return
        self._owner_of(pbn).note_programmed(vb)

    def _on_host_write(self, lpn: int, ppn: int, ctx: WriteContext) -> None:
        self._after_program(ppn)

    def _on_gc_copy(self, lpn: int, old_ppn: int, new_ppn: int) -> None:
        self._after_program(new_ppn)

    def _on_host_read(self, lpn: int, ppn: int) -> None:
        if ppn % self._ppb >= self._fast_half_start:
            extra = self.stats.extra
            extra["ppb.reads_fast_half"] = extra.get("ppb.reads_fast_half", 0.0) + 1.0
        if lpn in self._lru:
            for demoted in self._lru.on_read(lpn):
                self._freq.on_write(demoted)  # cold area adopts it
                self.stats.bump("ppb.demoted_to_cold")
        else:
            if self._freq.on_read(lpn):
                self.stats.bump("ppb.promoted_icy_to_cold")
            if self._freq.count_of(lpn) == self.config.migrate_reads:
                self._migration_queue.append(lpn)

    def _on_trim(self, lpn: int) -> None:
        # Discarded data carries no temperature: drop the chunk from
        # both trackers so a stale hot/cold class cannot steer the
        # placement of whatever the host writes there next.
        self._lru.drop(lpn)
        self._freq.drop(lpn)

    def _on_erase(self, pbn: int) -> None:
        if self.vbmgr.is_carved(pbn):
            self._owner_of(pbn).forget_block(pbn)
        self.vbmgr.release(pbn)

    # ------------------------------------------------------------------
    # Progressive cold migration (paper Fig. 11a)
    # ------------------------------------------------------------------

    def _collect(self, victim: int) -> float:
        latency = super()._collect(victim)
        latency += self._migrate_promoted()
        return latency

    def _migrate_promoted(self) -> float:
        """Move a bounded batch of promoted cold pages onto fast pages.

        Runs piggybacked on each GC pass (the paper conducts icy -> cold
        promotion "during GC only", Fig. 6).  Each promoted page still
        sitting on a slow page is relocated once to the cold area's fast
        stream; the cost is GC-accounted and bounded by the batch size,
        so foreground writes never pay for it.
        """
        batch = self.config.gc_migration_batch
        if not batch or not self._migration_queue or self.blocks.free_count <= 2:
            return 0.0
        cold_alloc = self.allocators[Area.COLD]
        # The reliability-aware policy vetoes migration the same way it
        # vetoes host placement: no point paying a copy to move data
        # onto fast pages it would currently divert away from.
        if self.placement is not None and not self.placement.prefer_fast(
            cold_alloc.peek_pbn(True), cold_alloc.peek_pbn(False)
        ):
            return 0.0
        half = self.spec.pages_per_block // 2
        latency = 0.0
        moved = 0
        while self._migration_queue and moved < batch:
            if not cold_alloc.has_space(True):
                break
            lpn = self._migration_queue.popleft()
            ppn = self.map.ppn_of(lpn)
            if ppn < 0:
                continue
            if self.current_level(lpn) is not HotnessLevel.COLD:
                continue
            if self.geometry.page_of_ppn(ppn) >= half:
                continue  # already on a fast page
            dst = cold_alloc.alloc_page(True)
            read_us, write_us = self.device.copy_page(ppn, dst)
            self._commit_mapping(lpn, dst)
            self._note_if_full(dst)
            self._after_program(dst)
            self.stats.gc_copied_pages += 1
            self.stats.gc_read_us += read_us
            self.stats.gc_write_us += write_us
            self.stats.bump("ppb.migrations")
            latency += read_us + write_us
            moved += 1
        return latency

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def placement_report(self) -> dict[str, float]:
        """Where data went and how the lists behaved (for EXPERIMENTS.md)."""
        report = dict(sorted(self.stats.extra.items()))
        for area, allocator in self.allocators.items():
            report[f"ppb.{area.value}.diverted_writes"] = allocator.diverted_writes
            report[f"ppb.{area.value}.pairs_opened"] = allocator.pairs_opened
        if self.placement is not None:
            report["ppb.placement.fast_choices"] = self.placement.fast_choices
            report["ppb.placement.slow_diverts"] = self.placement.slow_diverts
        report["ppb.lru.promotions"] = self.hot_area.lru.promotions
        report["ppb.lru.demotions_to_hot"] = self.hot_area.lru.demotions_to_hot
        report["ppb.lru.evictions"] = self.hot_area.lru.evictions
        report["ppb.freq.promotions"] = self.cold_area.table.promotions
        report["ppb.freq.evictions"] = self.cold_area.table.evictions
        return report

    def fast_page_read_fraction(self) -> float:
        """Fraction of host reads served from the fast half of a block.

        A speed-oblivious FTL sits near 0.5; good PPB placement pushes
        this well above it.  Diagnostic for how well placement works.
        """
        fast = self.stats.extra.get("ppb.reads_fast_half", 0.0)
        total = self.stats.host_read_pages
        return fast / total if total else 0.0

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        return (
            f"{self.name} (split={self.config.vb_split}, "
            f"identifier={self.identifier.name}, "
            f"lpns={self.num_lpns}, blocks={self.spec.total_blocks}, "
            f"gc_watermarks={self.gc_low_blocks}/{self.gc_high_blocks})"
        )
