"""Tunable parameters of the PPB strategy.

Defaults follow the paper where it is specific (two virtual blocks per
physical block, size-check first-stage identification) and use sensible
fractions of device capacity where it is not (tracker sizes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class PPBConfig:
    """Configuration for :class:`repro.core.ppb_ftl.PPBFTL`."""

    #: virtual blocks carved per physical block (paper default: 2; the
    #: paper notes more are possible at higher bookkeeping cost).
    vb_split: int = 2
    #: first-stage identifier: "size_check" (paper's case study),
    #: "two_level_lru" or "multi_hash".
    identifier: str = "size_check"
    #: VB list discipline: "pipelined" (keeps a slow and a fast VB open
    #: concurrently; what the paper's measured gains require) or
    #: "strict" (a literal reading of Algorithm 1; ablation).
    allocation_discipline: str = "pipelined"
    #: bound on fast VBs queued awaiting allocation per area — the
    #: "both lists are full" guard of Fig. 10b III.
    max_pending_vbs: int = 2
    #: consolidate GC-relocated icy-cold data into its own block pairs
    #: instead of mixing it with fresh icy-cold host writes (lifetime
    #: separation).  Off by default: it costs extra open blocks, which
    #: under tight over-provisioning raises the erase count more than
    #: the consolidation saves.  Kept for the ablation benches.
    separate_gc_icy: bool = False
    #: how many promoted (icy -> cold) pages each GC pass may migrate to
    #: fast virtual blocks (paper Fig. 11a: the sorted frequency table's
    #: data "moves to its new location with suitable access speed").
    #: Write-once-read-many data lives in fully-valid blocks greedy GC
    #: never selects, so without this bounded migration it could never
    #: reach fast pages.  0 disables.
    gc_migration_batch: int = 16
    #: reads a cold page must log before it queues for migration.  Kept
    #: above ``cold_promote_reads`` so only the proven-popular head of
    #: the frequency table pays the migration copy; each migration pokes
    #: an invalid page into an otherwise-valid block, and migrating the
    #: long tail would hand greedy GC a swarm of expensive victims.
    migrate_reads: int = 3
    #: hot-list capacity as a fraction of logical pages.
    hot_list_fraction: float = 0.03
    #: iron-hot-list capacity as a fraction of logical pages.
    iron_list_fraction: float = 0.02
    #: access-frequency-table capacity as a fraction of logical pages.
    freq_table_fraction: float = 0.25
    #: reads needed for icy-cold data to be promoted to cold
    #: (paper Fig. 6: "promote if read" — a single read suffices).
    cold_promote_reads: int = 1
    #: halve all frequency counts every N tracked operations (aging); 0
    #: disables aging.
    freq_aging_period: int = 100_000
    #: minimum absolute tracker capacities (useful on tiny test devices).
    min_list_entries: int = 16
    #: weight of the predicted-reliability cost in placement decisions.
    #: 0 (default) is the paper's pure-speed PPB: frequently-read data
    #: always claims fast pages.  > 0 prices the fast (bottom-layer)
    #: pages' higher predicted RBER-at-horizon against their speed gain
    #: and diverts read-hot data to slow pages when the reliability cost
    #: wins — the speed-vs-lifetime utility knob (needs an attached
    #: reliability manager to have any effect).
    reliability_weight: float = 0.0
    #: retention horizon (seconds) at which placement predicts *cold*
    #: data's RBER — write-once data sits this long before the policy's
    #: imagined read.  Default: one week.
    placement_horizon_s: float = 7 * 86400.0
    #: per-block read count at which placement predicts *iron-hot*
    #: data's RBER — rewritten-constantly data ages ~0 but its blocks
    #: absorb this much read disturb (0 ignores disturb).
    placement_horizon_reads: int = 0

    def __post_init__(self) -> None:
        if self.vb_split < 2:
            raise ConfigError(f"vb_split must be >= 2, got {self.vb_split}")
        if self.identifier not in ("size_check", "two_level_lru", "multi_hash"):
            raise ConfigError(f"unknown identifier {self.identifier!r}")
        if self.allocation_discipline not in ("pipelined", "strict"):
            raise ConfigError(
                f"unknown allocation discipline {self.allocation_discipline!r}"
            )
        if self.max_pending_vbs < 1:
            raise ConfigError(
                f"max_pending_vbs must be >= 1, got {self.max_pending_vbs}"
            )
        if self.gc_migration_batch < 0:
            raise ConfigError(
                f"gc_migration_batch must be >= 0, got {self.gc_migration_batch}"
            )
        if self.migrate_reads < self.cold_promote_reads:
            raise ConfigError(
                f"migrate_reads ({self.migrate_reads}) must be >= "
                f"cold_promote_reads ({self.cold_promote_reads})"
            )
        for name in ("hot_list_fraction", "iron_list_fraction", "freq_table_fraction"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigError(f"{name} must be in (0, 1], got {value}")
        if self.cold_promote_reads < 1:
            raise ConfigError(
                f"cold_promote_reads must be >= 1, got {self.cold_promote_reads}"
            )
        if self.freq_aging_period < 0:
            raise ConfigError(
                f"freq_aging_period must be >= 0, got {self.freq_aging_period}"
            )
        if self.reliability_weight < 0:
            raise ConfigError(
                f"reliability_weight must be >= 0, got {self.reliability_weight}"
            )
        if self.placement_horizon_s < 0:
            raise ConfigError(
                f"placement_horizon_s must be >= 0, got {self.placement_horizon_s}"
            )
        if self.placement_horizon_reads < 0:
            raise ConfigError(
                f"placement_horizon_reads must be >= 0, got {self.placement_horizon_reads}"
            )

    # ------------------------------------------------------------------

    def hot_list_capacity(self, num_lpns: int) -> int:
        """Absolute hot-list capacity for a device with ``num_lpns`` pages."""
        return max(self.min_list_entries, int(num_lpns * self.hot_list_fraction))

    def iron_list_capacity(self, num_lpns: int) -> int:
        """Absolute iron-hot-list capacity."""
        return max(self.min_list_entries, int(num_lpns * self.iron_list_fraction))

    def freq_table_capacity(self, num_lpns: int) -> int:
        """Absolute access-frequency-table capacity."""
        return max(self.min_list_entries, int(num_lpns * self.freq_table_fraction))
