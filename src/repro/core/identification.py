"""First-stage hot/cold identification.

The PPB strategy deliberately reuses *existing* identification schemes
for its first stage ("instead of proposing a new hot/cold data
identification mechanism ... the proposed strategy is compatible with
any hot/cold data identification mechanisms", Section 3.1).  Three are
provided:

* :class:`SizeCheckIdentifier` — the paper's case study (Fig. 4):
  write requests smaller than one page are hot, the rest cold.  Based
  on the request-size-based prediction of Chang (ASP-DAC'08, the
  paper's ref [1]).
* :class:`TwoLevelLruIdentifier` — recently-rewritten LPNs are hot
  (Chang & Kuo, RTAS'02, ref [2]).
* :class:`MultiHashIdentifier` — K hash functions over a table of
  saturating counters with periodic decay (Hsieh, Chang & Kuo,
  SAC'05, ref [5]).

All the second-stage refinement (iron-hot vs hot, cold vs icy-cold) is
PPB's own and lives in the area trackers, not here.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigError
from repro.traces.synthetic import fnv1a_64


class FirstStageIdentifier:
    """Interface: classify each write request as hot or cold."""

    name = "abstract"

    def is_hot_write(self, lpn: int, nbytes: int) -> bool:
        """True if the write of ``lpn`` (part of an ``nbytes`` request) is hot."""
        raise NotImplementedError


class SizeCheckIdentifier(FirstStageIdentifier):
    """Hot iff the host request is smaller than one flash page.

    Small writes are metadata/temp-file updates (hot); bulk writes are
    content (cold).  Note the page-size dependence: the same trace
    yields more first-stage-hot data on a 16 KB-page device than an
    8 KB one — one reason the paper's Fig. 12 improves with page size.
    """

    name = "size_check"

    def __init__(self, page_size: int) -> None:
        if page_size <= 0:
            raise ConfigError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size

    def is_hot_write(self, lpn: int, nbytes: int) -> bool:
        return nbytes < self.page_size


class TwoLevelLruIdentifier(FirstStageIdentifier):
    """Hot iff the LPN was rewritten while still in a candidate LRU list.

    First write inserts the LPN into the *candidate* list; a rewrite
    while still resident promotes it to the *hot* list.  LPNs in the
    hot list classify as hot until evicted.
    """

    name = "two_level_lru"

    def __init__(self, candidate_capacity: int = 4096, hot_capacity: int = 1024) -> None:
        if candidate_capacity < 1 or hot_capacity < 1:
            raise ConfigError("capacities must be >= 1")
        self.candidate_capacity = candidate_capacity
        self.hot_capacity = hot_capacity
        self._candidates: OrderedDict[int, None] = OrderedDict()
        self._hot: OrderedDict[int, None] = OrderedDict()

    def is_hot_write(self, lpn: int, nbytes: int) -> bool:
        if lpn in self._hot:
            self._hot.move_to_end(lpn)
            return True
        if lpn in self._candidates:
            del self._candidates[lpn]
            self._hot[lpn] = None
            if len(self._hot) > self.hot_capacity:
                demoted, _ = self._hot.popitem(last=False)
                self._touch_candidate(demoted)
            return True
        self._touch_candidate(lpn)
        return False

    def _touch_candidate(self, lpn: int) -> None:
        self._candidates[lpn] = None
        self._candidates.move_to_end(lpn)
        if len(self._candidates) > self.candidate_capacity:
            self._candidates.popitem(last=False)


class MultiHashIdentifier(FirstStageIdentifier):
    """K-hash scheme over saturating counters with periodic decay.

    Each write increments K counters selected by independent hashes of
    the LPN; a write is hot when every selected counter is already at or
    above the threshold.  Counters saturate at 15 (4-bit, as in the
    original paper) and are halved every ``decay_period`` writes.
    """

    name = "multi_hash"

    def __init__(
        self,
        table_size: int = 4096,
        num_hashes: int = 2,
        threshold: int = 4,
        decay_period: int = 4096,
        saturation: int = 15,
    ) -> None:
        if table_size < 1 or num_hashes < 1:
            raise ConfigError("table_size and num_hashes must be >= 1")
        if not 1 <= threshold <= saturation:
            raise ConfigError(f"threshold must be in [1, {saturation}], got {threshold}")
        self.table_size = table_size
        self.num_hashes = num_hashes
        self.threshold = threshold
        self.decay_period = decay_period
        self.saturation = saturation
        self._counters = [0] * table_size
        self._writes_since_decay = 0

    def _buckets(self, lpn: int) -> list[int]:
        return [
            fnv1a_64(lpn * 0x9E3779B97F4A7C15 + salt) % self.table_size
            for salt in range(self.num_hashes)
        ]

    def is_hot_write(self, lpn: int, nbytes: int) -> bool:
        buckets = self._buckets(lpn)
        hot = all(self._counters[b] >= self.threshold for b in buckets)
        for b in buckets:
            if self._counters[b] < self.saturation:
                self._counters[b] += 1
        self._writes_since_decay += 1
        if self.decay_period and self._writes_since_decay >= self.decay_period:
            self._counters = [c >> 1 for c in self._counters]
            self._writes_since_decay = 0
        return hot


def make_identifier(name: str, page_size: int) -> FirstStageIdentifier:
    """Factory used by :class:`~repro.core.ppb_ftl.PPBFTL`."""
    if name == "size_check":
        return SizeCheckIdentifier(page_size)
    if name == "two_level_lru":
        return TwoLevelLruIdentifier()
    if name == "multi_hash":
        return MultiHashIdentifier()
    raise ConfigError(f"unknown first-stage identifier {name!r}")
