"""Reproduction of "Boosting the Performance of 3D Charge Trap NAND
Flash with Asymmetric Feature Process Size Characteristic" (DAC 2017).

The package provides, from the bottom up:

* :mod:`repro.nand` — a 3D charge-trap NAND device model whose pages
  have layer-dependent (asymmetric) access latency;
* :mod:`repro.traces` — MSR-Cambridge-format trace parsing and seeded
  synthetic enterprise workloads (media server, web/SQL server);
* :mod:`repro.ftl` — the speed-oblivious baselines: a conventional
  page-mapping FTL and the FAST hybrid log-buffer FTL;
* :mod:`repro.core` — the paper's contribution: the Progressive
  Performance Boosting (PPB) strategy (four-level hotness, virtual
  blocks, hot/cold areas);
* :mod:`repro.sim` — a discrete-event simulation kernel and the SSD
  front end used for trace replay;
* :mod:`repro.scenario` — the declarative experiment layer: one frozen
  :class:`~repro.scenario.spec.ScenarioSpec` to configure, serialize
  (JSON/TOML), sweep (dotted field paths) and cache every run;
* :mod:`repro.bench` — the harness regenerating every table and figure
  of the paper's evaluation.

Quickstart::

    from repro import quick_comparison
    print(quick_comparison())

    from repro import ScenarioSpec, run_scenario
    result = run_scenario(ScenarioSpec(ftl="ppb", num_requests=4000))
"""

from repro.core.config import PPBConfig
from repro.core.ppb_ftl import PPBFTL
from repro.ftl.conventional import ConventionalFTL
from repro.ftl.fast import FastFTL
from repro.nand.device import NandDevice
from repro.nand.spec import NandSpec, sim_spec, table1_spec, tiny_spec
from repro.scenario import (
    PreconditionPhase,
    ScenarioSpec,
    SweepAxis,
    TenantSpec,
    load_scenario_file,
    run_scenario,
    run_scenarios,
    sweep,
)
from repro.sim.replay import replay_trace
from repro.sim.ssd import SSD, RunResult
from repro.traces.record import IORequest, OpType, Trace
from repro.traces.workloads import (
    MediaServerWorkload,
    PatternSuiteWorkload,
    UniformWorkload,
    WebSqlWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "NandSpec",
    "NandDevice",
    "sim_spec",
    "table1_spec",
    "tiny_spec",
    "ConventionalFTL",
    "FastFTL",
    "PPBFTL",
    "PPBConfig",
    "SSD",
    "RunResult",
    "replay_trace",
    "ScenarioSpec",
    "TenantSpec",
    "PreconditionPhase",
    "SweepAxis",
    "load_scenario_file",
    "run_scenario",
    "run_scenarios",
    "sweep",
    "IORequest",
    "OpType",
    "Trace",
    "MediaServerWorkload",
    "WebSqlWorkload",
    "UniformWorkload",
    "PatternSuiteWorkload",
    "quick_comparison",
    "__version__",
]


def quick_comparison(
    workload: str = "web-sql",
    num_requests: int = 30_000,
    speed_ratio: float = 4.0,
    seed: int = 42,
) -> str:
    """Small conventional-vs-PPB comparison; returns a printable report.

    This is the library's "hello world": it builds a scaled device,
    synthesizes an enterprise workload, replays it under both FTLs and
    reports the read enhancement the PPB strategy achieves.
    """
    from repro.bench.experiment import BenchScale, Cell, ExperimentRunner, SMOKE_SCALE

    runner = ExperimentRunner()
    cell = Cell(
        workload=workload,
        speed_ratio=speed_ratio,
        seed=seed,
        scale=BenchScale(
            name="quick",
            num_requests=num_requests,
            blocks_per_chip=SMOKE_SCALE.blocks_per_chip,
        ),
    )
    base, ppb = runner.compare(cell)
    gain = (base.read_us - ppb.read_us) / base.read_us if base.read_us else 0.0
    lines = [
        f"workload       {workload} ({num_requests} requests, seed {seed})",
        f"speed ratio    {speed_ratio:.0f}x (slowest vs fastest page)",
        f"conventional   read {base.read_seconds:.3f} s, erases {base.erase_count}",
        f"ppb            read {ppb.read_seconds:.3f} s, erases {ppb.erase_count}",
        f"read gain      {gain * 100:.2f}%",
        f"fast-half reads under PPB: {ppb.fast_read_fraction * 100:.1f}%",
    ]
    return "\n".join(lines)
